#include "support/fuzz_gen.hh"

#include <sstream>
#include <vector>

#include "support/random.hh"

namespace vspec
{

namespace
{

/** Object shapes: same property set in different insertion orders (and
 *  different widths) so rotating between them exercises map-transition
 *  chains, polymorphic ICs and WrongMap deopts. */
const char *const kShapes[] = {
    "{ x: 1, y: 2 }",
    "{ y: 3, x: 4 }",
    "{ x: 5, y: 6, z: 7 }",
    "{ w: 8, x: 9 }",
    "{ x: 10 }",
};
constexpr size_t kNumShapes = sizeof(kShapes) / sizeof(kShapes[0]);

const char *const kPropNames[] = { "x", "y", "z", "w" };
constexpr size_t kNumProps = sizeof(kPropNames) / sizeof(kPropNames[0]);

class FuzzGen
{
  public:
    FuzzGen(u64 seed, const FuzzOptions &opts) : rng(seed), o(opts) {}

    std::string generate();

  private:
    Rng rng;
    FuzzOptions o;
    std::ostringstream out;
    u32 tempCounter = 0;

    std::string iv(u32 i) { return "i" + std::to_string(i); }
    std::string fv(u32 i) { return "f" + std::to_string(i); }
    std::string sv(u32 i) { return "s" + std::to_string(i); }
    std::string av(u32 i) { return "a" + std::to_string(i); }
    std::string ov(u32 i) { return "o" + std::to_string(i); }
    std::string fn(u32 i) { return "fz" + std::to_string(i); }

    std::string pickInt() { return iv(static_cast<u32>(rng.nextBelow(o.intVars))); }
    std::string pickFloat() { return fv(static_cast<u32>(rng.nextBelow(o.floatVars))); }
    std::string pickString() { return sv(static_cast<u32>(rng.nextBelow(o.stringVars))); }
    std::string pickArray() { return av(static_cast<u32>(rng.nextBelow(o.arrayVars))); }
    std::string pickObject() { return ov(static_cast<u32>(rng.nextBelow(o.objectVars))); }
    const char *pickProp() { return kPropNames[rng.nextBelow(kNumProps)]; }

    std::string intExpr(u32 depth, const std::vector<std::string> &names);
    std::string floatExpr(u32 depth);
    /** Non-negative index expression; in-bounds iff @p inBounds. */
    std::string indexExpr(const std::string &arr, bool in_bounds);
    void statement(u32 depth, const std::vector<std::string> &loop_vars);
    void setup();
    void helpers();
    void recursiveHelpers();
    void bench();
    void verifyFn();
};

std::string
FuzzGen::intExpr(u32 depth, const std::vector<std::string> &names)
{
    // Leaf choices when out of depth budget.
    if (depth == 0) {
        switch (rng.nextBelow(3)) {
          case 0: return std::to_string(rng.nextRange(-999, 999));
          case 1: return pickInt();
          default:
            return names.empty() ? pickInt()
                                 : names[rng.nextBelow(names.size())];
        }
    }
    switch (rng.nextBelow(10)) {
      case 0:
        return std::to_string(rng.nextRange(-999, 999));
      case 1:
        // Near the 31-bit SMI boundary: sums overflow to heap numbers,
        // the JIT's SmallInteger speculation deopts.
        return std::to_string(536870000 + rng.nextRange(0, 999));
      case 2:
        return pickInt();
      case 3: {
        static const char *const ops[] = { "+", "-", "*", "&", "|", "^" };
        return "(" + intExpr(depth - 1, names) + " "
               + ops[rng.nextBelow(6)] + " " + intExpr(depth - 1, names)
               + ")";
      }
      case 4: {
        std::string a = pickArray();
        // One in three indexed loads may go out of bounds (yielding
        // undefined -> 0 under |0); these are the Boundary-check sites.
        bool oob = rng.nextBelow(3) == 0;
        return "(" + a + "[" + indexExpr(a, !oob) + "] | 0)";
      }
      case 5:
        return "(" + pickObject() + "." + pickProp() + " | 0)";
      case 6: {
        std::string s = pickString();
        return "(" + s + ".charCodeAt((" + pickInt() + " & 255) % "
               + s + ".length) | 0)";
      }
      case 7:
        if (o.helperFunctions > 0)
            return fn(static_cast<u32>(rng.nextBelow(o.helperFunctions)))
                   + "(" + intExpr(depth - 1, names) + ", "
                   + intExpr(depth - 1, names) + ")";
        return pickInt();
      case 8:
        return "(" + intExpr(depth - 1, names) + " >> "
               + std::to_string(rng.nextBelow(5)) + ")";
      default:
        return "(" + floatExpr(depth - 1) + " | 0)";
    }
}

std::string
FuzzGen::floatExpr(u32 depth)
{
    if (depth == 0) {
        if (rng.nextBelow(2) == 0)
            return pickFloat();
        return std::to_string(rng.nextRange(0, 99)) + "."
               + std::to_string(rng.nextBelow(100));
    }
    switch (rng.nextBelow(6)) {
      case 0:
        return pickFloat();
      case 1:
        return std::to_string(rng.nextRange(0, 99)) + "."
               + std::to_string(rng.nextBelow(100));
      case 2: {
        static const char *const ops[] = { "+", "-", "*" };
        return "(" + floatExpr(depth - 1) + " " + ops[rng.nextBelow(3)]
               + " " + floatExpr(depth - 1) + ")";
      }
      case 3:
        return "Math.sqrt(Math.abs(" + floatExpr(depth - 1) + "))";
      case 4:
        return "Math.floor(" + floatExpr(depth - 1) + ")";
      default:
        return "(" + pickInt() + " * 0.5)";
    }
}

std::string
FuzzGen::indexExpr(const std::string &arr, bool in_bounds)
{
    std::string raw = "(" + pickInt() + " & 255)";
    if (in_bounds)
        return raw + " % " + arr + ".length";
    return raw;  // may exceed length: OOB *load* only
}

void
FuzzGen::statement(u32 depth, const std::vector<std::string> &loop_vars)
{
    switch (rng.nextBelow(12)) {
      case 0:
      case 1:
        out << "  " << pickInt() << " = (" << intExpr(depth, loop_vars)
            << ") | 0;\n";
        break;
      case 2:
        // No |0: the result may escape the SMI range or go NaN, keeping
        // later uses of this variable polymorphic in representation.
        out << "  " << pickInt() << " = " << intExpr(depth, loop_vars)
            << ";\n";
        break;
      case 3:
        out << "  " << fv(static_cast<u32>(rng.nextBelow(o.floatVars)))
            << " = " << floatExpr(depth) << ";\n";
        break;
      case 4: {
        std::string a = pickArray();
        out << "  " << a << "[" << indexExpr(a, true) << "] = "
            << intExpr(depth > 0 ? depth - 1 : 0, loop_vars) << ";\n";
        break;
      }
      case 5:
        out << "  " << pickArray() << ".push("
            << intExpr(1, loop_vars) << ");\n";
        break;
      case 6:
        out << "  " << pickObject() << "." << pickProp() << " = "
            << intExpr(1, loop_vars) << ";\n";
        break;
      case 7:
        // Shape rotation: the store sites seeing this object go
        // polymorphic, compiled map checks start to miss (WrongMap).
        out << "  if ((" << pickInt() << " & 1) == 0) { "
            << ov(static_cast<u32>(rng.nextBelow(o.objectVars))) << " = "
            << kShapes[rng.nextBelow(kNumShapes)] << "; }\n";
        break;
      case 8: {
        std::string t = "t" + std::to_string(tempCounter++);
        u32 n = static_cast<u32>(rng.nextRange(3, 9));
        out << "  for (var " << t << " = 0; " << t << " < " << n << "; "
            << t << " = " << t << " + 1) {\n";
        std::vector<std::string> inner = loop_vars;
        inner.push_back(t);
        out << "  ";
        statement(depth > 0 ? depth - 1 : 0, inner);
        out << "  }\n";
        break;
      }
      case 9:
        out << "  if (" << pickInt() << " < " << intExpr(1, loop_vars)
            << ") {\n  ";
        statement(depth > 0 ? depth - 1 : 0, loop_vars);
        out << "  } else {\n  ";
        statement(depth > 0 ? depth - 1 : 0, loop_vars);
        out << "  }\n";
        break;
      case 10:
        out << "  " << pickString() << " = " << pickString() << " + \""
            << static_cast<char>('a' + rng.nextBelow(26)) << "\";\n";
        break;
      default:
        if (o.recursiveHelpers > 0 && rng.nextBelow(2) == 0) {
            out << "  " << pickInt() << " = fr"
                << rng.nextBelow(o.recursiveHelpers) << "("
                << intExpr(1, loop_vars) << ", "
                << rng.nextRange(2, 12) << ") | 0;\n";
        } else if (o.helperFunctions > 0) {
            out << "  " << pickInt() << " = "
                << fn(static_cast<u32>(rng.nextBelow(o.helperFunctions)))
                << "(" << intExpr(1, loop_vars) << ", "
                << intExpr(1, loop_vars) << ") | 0;\n";
        } else {
            out << "  " << pickInt() << " = (" << pickInt() << " + 1) | 0;\n";
        }
        break;
    }
}

void
FuzzGen::setup()
{
    for (u32 i = 0; i < o.intVars; i++)
        out << "var " << iv(i) << " = "
            << rng.nextRange(-999, 999) << ";\n";
    for (u32 i = 0; i < o.floatVars; i++)
        out << "var " << fv(i) << " = " << rng.nextRange(0, 99) << "."
            << rng.nextBelow(100) << ";\n";
    for (u32 i = 0; i < o.stringVars; i++) {
        out << "var " << sv(i) << " = \"";
        u32 len = static_cast<u32>(rng.nextRange(4, 10));
        for (u32 j = 0; j < len; j++)
            out << static_cast<char>('a' + rng.nextBelow(26));
        out << "\";\n";
    }
    for (u32 i = 0; i < o.arrayVars; i++) {
        bool floats = rng.nextBelow(3) == 0;
        u32 len = static_cast<u32>(rng.nextRange(4, 8));
        out << "var " << av(i) << " = [";
        for (u32 j = 0; j < len; j++) {
            if (j != 0)
                out << ", ";
            if (floats)
                out << rng.nextRange(0, 99) << "." << rng.nextBelow(100);
            else
                out << rng.nextRange(-99, 99);
        }
        out << "];\n";
    }
    for (u32 i = 0; i < o.objectVars; i++)
        out << "var " << ov(i) << " = "
            << kShapes[rng.nextBelow(kNumShapes)] << ";\n";
    out << "var CHK = 0;\n";
}

void
FuzzGen::helpers()
{
    for (u32 i = 0; i < o.helperFunctions; i++) {
        out << "function " << fn(i) << "(p0, p1) {\n";
        // Leaf body: parameters and literals only, so helpers never
        // recurse and always terminate.
        static const char *const ops[] = { "+", "-", "*", "&", "^" };
        out << "  return ((p0 " << ops[rng.nextBelow(5)] << " p1) "
            << ops[rng.nextBelow(5)] << " "
            << rng.nextRange(-99, 99) << ") | 0;\n";
        out << "}\n";
    }
}

void
FuzzGen::recursiveHelpers()
{
    // Bounded self-recursion: the depth argument strictly decreases
    // and bottoms out at 0, so termination is structural. Exercises
    // call-feedback on recursive targets and deep interpreter<->JIT
    // re-entry without approaching the invoke-depth guard.
    for (u32 i = 0; i < o.recursiveHelpers; i++) {
        static const char *const ops[] = { "+", "-", "^" };
        out << "function fr" << i << "(p0, d) {\n"
            << "  if (d <= 0) { return p0 | 0; }\n"
            << "  return (fr" << i << "((p0 " << ops[rng.nextBelow(3)]
            << " " << rng.nextRange(1, 9) << ") | 0, d - 1) "
            << ops[rng.nextBelow(3)] << " d) | 0;\n"
            << "}\n";
    }
}

void
FuzzGen::bench()
{
    out << "function bench() {\n";
    for (u32 i = 0; i < o.statements; i++)
        statement(o.maxExprDepth, {});
    out << "  CHK = (CHK * 31";
    for (u32 i = 0; i < o.intVars; i++)
        out << " + (" << iv(i) << " | 0)";
    for (u32 i = 0; i < o.floatVars; i++)
        out << " + (" << fv(i) << " * 64 | 0)";
    out << ") | 0;\n";
    out << "}\n";
}

void
FuzzGen::verifyFn()
{
    out << "function verify() {\n";
    out << "  var h = CHK | 0;\n";
    for (u32 i = 0; i < o.intVars; i++)
        out << "  h = (h * 31 + (" << iv(i) << " | 0)) | 0;\n";
    for (u32 i = 0; i < o.floatVars; i++)
        out << "  h = (h * 31 + (" << fv(i) << " * 1024 | 0)) | 0;\n";
    for (u32 i = 0; i < o.stringVars; i++)
        out << "  h = (h * 31 + " << sv(i) << ".length) | 0;\n";
    for (u32 i = 0; i < o.arrayVars; i++) {
        out << "  for (var v" << i << " = 0; v" << i << " < " << av(i)
            << ".length; v" << i << " = v" << i << " + 1) {\n"
            << "    h = (h * 31 + (" << av(i) << "[v" << i
            << "] * 16 | 0)) | 0;\n  }\n";
    }
    for (u32 i = 0; i < o.objectVars; i++)
        for (size_t p = 0; p < kNumProps; p++)
            out << "  h = (h * 31 + (" << ov(i) << "." << kPropNames[p]
                << " | 0)) | 0;\n";
    out << "  return h;\n}\n";
}

std::string
FuzzGen::generate()
{
    setup();
    helpers();
    recursiveHelpers();
    bench();
    verifyFn();
    return out.str();
}

} // namespace

std::string
generateFuzzProgram(u64 seed, const FuzzOptions &opts)
{
    // Seed 0 would degenerate in Xorshift; fold it away deterministically.
    FuzzGen gen(seed * 0x9e3779b97f4a7c15ULL + 1, opts);
    return gen.generate();
}

} // namespace vspec
