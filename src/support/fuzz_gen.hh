/**
 * @file
 * Seeded random MiniJS program generator for differential testing.
 *
 * Programs follow the workload protocol (top-level setup, `bench()`,
 * `verify()` returning a checksum) and are constructed to be
 * panic-free by typing every variable: indexed accesses only touch
 * array variables with in-bounds non-negative store indices, property
 * stores only touch object variables, and calls only name generated
 * helper functions. Within those constraints the generator
 * deliberately leans on the engine's speculation surface — SMI
 * arithmetic that overflows past 2^30, object shapes that rotate
 * between map layouts (WrongMap / polymorphic ICs), and array loads
 * that stray out of bounds (Boundary checks; OOB loads are defined to
 * yield `undefined`).
 *
 * Generation draws only from a seeded support/random Rng, so a seed
 * identifies a program forever — a failing seed is a repro case.
 */

#ifndef VSPEC_SUPPORT_FUZZ_GEN_HH
#define VSPEC_SUPPORT_FUZZ_GEN_HH

#include <string>

#include "support/common.hh"

namespace vspec
{

struct FuzzOptions
{
    u32 statements = 12;      //!< statement budget for bench()
    u32 helperFunctions = 2;  //!< callable leaf functions
    /** Bounded self-recursive helpers (0 = none, keeping the default
     *  program stream unchanged). Each recursion strictly decreases a
     *  depth parameter, so termination is structural; call depth stays
     *  far below the engine's invoke-depth guard. Exercises the
     *  interpreter<->JIT re-entry and unwinding paths. */
    u32 recursiveHelpers = 0;
    u32 intVars = 4;
    u32 floatVars = 2;
    u32 stringVars = 2;
    u32 arrayVars = 2;
    u32 objectVars = 2;
    u32 maxExprDepth = 3;
};

/** Generate one complete MiniJS program from @p seed. */
std::string generateFuzzProgram(u64 seed, const FuzzOptions &opts = {});

} // namespace vspec

#endif // VSPEC_SUPPORT_FUZZ_GEN_HH
