#include "support/random.hh"

namespace vspec
{

u64
Rng::next()
{
    u64 x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dULL;
}

u64
Rng::nextBelow(u64 bound)
{
    vassert(bound > 0, "nextBelow bound must be positive");
    return next() % bound;
}

double
Rng::nextDouble()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

i64
Rng::nextRange(i64 lo, i64 hi)
{
    vassert(lo <= hi, "nextRange: lo must not exceed hi");
    return lo + static_cast<i64>(nextBelow(static_cast<u64>(hi - lo + 1)));
}

double
Rng::nextGaussian()
{
    // Irwin-Hall approximation: sum of 12 uniforms minus 6 has mean 0 and
    // variance 1; good enough for simulated measurement noise.
    double s = 0.0;
    for (int i = 0; i < 12; i++)
        s += nextDouble();
    return s - 6.0;
}

} // namespace vspec
