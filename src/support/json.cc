#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vspec
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

const JsonValue *
JsonValue::at(std::initializer_list<const char *> path) const
{
    const JsonValue *v = this;
    for (const char *key : path) {
        v = v->get(key);
        if (v == nullptr)
            return nullptr;
    }
    return v;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text(text), error(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != text.size())
            return fail("trailing characters after top-level value");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos && i < text.size(); i++) {
            if (text[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        error = "json: " + msg + " at line " + std::to_string(line)
                + ", column " + std::to_string(col);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        pos++;  // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            pos++;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':' after object key");
            pos++;
            skipWs();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object[key] = std::move(member);
            skipWs();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                pos++;
                continue;
            }
            if (text[pos] == '}') {
                pos++;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        pos++;  // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            pos++;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue elem;
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                pos++;
                continue;
            }
            if (text[pos] == ']') {
                pos++;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        pos++;  // '"'
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                pos++;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                pos++;
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= text.size())
                        return fail("truncated \\u escape");
                    u32 cp = 0;
                    for (int i = 0; i < 4; i++) {
                        char h = text[pos + 1 + i];
                        if (!std::isxdigit(static_cast<unsigned char>(h)))
                            return fail("bad \\u escape digit");
                        cp = cp * 16
                             + static_cast<u32>(
                                 h <= '9'   ? h - '0'
                                 : h <= 'F' ? h - 'A' + 10
                                            : h - 'a' + 10);
                    }
                    pos += 4;
                    // Encode as UTF-8 (surrogate pairs not recombined;
                    // vtrace never emits them).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
                pos++;
                continue;
            }
            out += c;
            pos++;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            pos++;
        if (pos >= text.size()
            || !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("invalid number");
        // Leading zero must not be followed by another digit.
        if (text[pos] == '0' && pos + 1 < text.size()
            && std::isdigit(static_cast<unsigned char>(text[pos + 1])))
            return fail("leading zero in number");
        while (pos < text.size()
               && std::isdigit(static_cast<unsigned char>(text[pos])))
            pos++;
        if (pos < text.size() && text[pos] == '.') {
            pos++;
            if (pos >= text.size()
                || !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("digit required after decimal point");
            while (pos < text.size()
                   && std::isdigit(static_cast<unsigned char>(text[pos])))
                pos++;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            pos++;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-'))
                pos++;
            if (pos >= text.size()
                || !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("digit required in exponent");
            while (pos < text.size()
                   && std::isdigit(static_cast<unsigned char>(text[pos])))
                pos++;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text.c_str() + start, nullptr);
        return true;
    }

    const std::string &text;
    std::string &error;
    size_t pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    return Parser(text, error).parse(out);
}

bool
jsonIsValid(const std::string &text, std::string *error)
{
    JsonValue v;
    std::string err;
    bool ok = parseJson(text, v, err);
    if (!ok && error != nullptr)
        *error = err;
    return ok;
}

namespace
{

std::string
writeNumber(double n)
{
    if (!std::isfinite(n))
        return "null";
    // Integers (the common case for counters) print exactly; anything
    // else gets enough digits to round-trip.
    if (n == std::floor(n) && std::fabs(n) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", n);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    return buf;
}

void
writeValue(const JsonValue &v, int indent, std::string &out)
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    std::string pad1(static_cast<size_t>(indent + 1) * 2, ' ');
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number:
        out += writeNumber(v.number);
        break;
      case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.string);
        out += '"';
        break;
      case JsonValue::Kind::Array: {
        if (v.array.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (size_t i = 0; i < v.array.size(); i++) {
            out += pad1;
            writeValue(v.array[i], indent + 1, out);
            if (i + 1 < v.array.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        if (v.object.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        size_t i = 0;
        for (const auto &kv : v.object) {
            out += pad1;
            out += '"';
            out += jsonEscape(kv.first);
            out += "\": ";
            writeValue(kv.second, indent + 1, out);
            if (++i < v.object.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += '}';
        break;
      }
    }
}

} // namespace

std::string
writeJson(const JsonValue &value, int indent)
{
    std::string out;
    writeValue(value, indent, out);
    return out;
}

} // namespace vspec
