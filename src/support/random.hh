/**
 * @file
 * Deterministic pseudo-random number generation. All randomized behaviour
 * in vspec (workload inputs, sampler jitter, simulated noise) draws from
 * explicitly seeded Xorshift64Star instances so experiments are
 * reproducible run to run.
 */

#ifndef VSPEC_SUPPORT_RANDOM_HH
#define VSPEC_SUPPORT_RANDOM_HH

#include "support/common.hh"

namespace vspec
{

/** Xorshift64* generator: small, fast, deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) : state(seed ? seed : 1) {}

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    u64 nextBelow(u64 bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. */
    i64 nextRange(i64 lo, i64 hi);

    /** Approximate standard normal via sum of uniforms. */
    double nextGaussian();

  private:
    u64 state;
};

} // namespace vspec

#endif // VSPEC_SUPPORT_RANDOM_HH
