/**
 * @file
 * Common fixed-width type aliases and error-handling helpers used across
 * the vspec code base. Follows the gem5 convention of panic() for
 * internal invariant violations and fatal() for user-caused errors.
 */

#ifndef VSPEC_SUPPORT_COMMON_HH
#define VSPEC_SUPPORT_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace vspec
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated-heap address (byte offset into the flat heap). */
using Addr = u32;

/** Cycle count on a simulated CPU. */
using Cycles = u64;

/**
 * Report an internal invariant violation and abort. Used for conditions
 * that indicate a bug in vspec itself, never for user errors.
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/**
 * Report an unrecoverable user-caused error (bad script, bad config) and
 * exit with a non-zero status.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

} // namespace vspec

#define vpanic(msg) ::vspec::panicImpl(__FILE__, __LINE__, (msg))
#define vfatal(msg) ::vspec::fatalImpl(__FILE__, __LINE__, (msg))

#define vassert(cond, msg)                                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vspec::panicImpl(__FILE__, __LINE__,                          \
                               std::string("assertion failed: ") + #cond +  \
                               " — " + (msg));                              \
    } while (0)

#endif // VSPEC_SUPPORT_COMMON_HH
