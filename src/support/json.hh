/**
 * @file
 * Minimal JSON support: string escaping for the writers (vtrace's two
 * output backends) and a small recursive-descent parser used by the
 * harness and the tests to consume and validate emitted documents.
 * Deliberately tiny — strict RFC 8259 subset, no comments, UTF-8 passed
 * through verbatim.
 */

#ifndef VSPEC_SUPPORT_JSON_HH
#define VSPEC_SUPPORT_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Parsed JSON value. Object keys keep insertion order out of scope;
 *  lookup is by exact key. */
class JsonValue
{
  public:
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member access; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** get() chained through a path of object keys. */
    const JsonValue *at(std::initializer_list<const char *> path) const;

    u64 asU64() const { return static_cast<u64>(number); }
};

/**
 * Parse @p text. On failure returns false and sets @p error to a
 * located message; @p out is unspecified. Trailing garbage after the
 * top-level value is an error, so a true result certifies that the
 * whole document is valid JSON.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &error);

/**
 * Serialize @p value back to JSON text. Two-space indentation per
 * nesting level; object keys in std::map order (sorted). Round-trips
 * through parseJson: write(parse(t)) is valid JSON with the same
 * value tree as t. Non-finite numbers are emitted as null (JSON has
 * no NaN/Inf).
 */
std::string writeJson(const JsonValue &value, int indent = 0);

/** Validation-only convenience wrapper. */
bool jsonIsValid(const std::string &text, std::string *error = nullptr);

} // namespace vspec

#endif // VSPEC_SUPPORT_JSON_HH
