/**
 * @file
 * Minimal structured logging. Components report through vlog() with a
 * severity and a component tag; the default sink writes to stderr.
 * Tests (and embedders that want to capture diagnostics) can install
 * their own sink. Deliberately tiny: vspec is a library, and the only
 * in-tree producer of warnings/errors is the verifier subsystem, whose
 * diagnostics must reach the operator even when the subsequent panic is
 * swallowed by the experiment harness.
 */

#ifndef VSPEC_SUPPORT_LOGGING_HH
#define VSPEC_SUPPORT_LOGGING_HH

#include <functional>
#include <string>

#include "support/common.hh"

namespace vspec
{

enum class LogLevel : u8
{
    Debug,
    Info,
    Warn,
    Error,
};

const char *logLevelName(LogLevel l);

/** Emit one log record through the current sink. */
void vlog(LogLevel level, const std::string &component,
          const std::string &message);

using LogSink = std::function<void(LogLevel, const std::string &,
                                   const std::string &)>;

/** Replace the log sink; an empty function restores the stderr default.
 *  @return the previous sink. */
LogSink setLogSink(LogSink sink);

/** Drop all records below @p level (default: Warn, so routine Info
 *  records from verification runs stay silent in test output). */
void setLogThreshold(LogLevel level);

} // namespace vspec

#endif // VSPEC_SUPPORT_LOGGING_HH
