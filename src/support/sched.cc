#include "support/sched.hh"

#include <atomic>
#include <cstdlib>

#include "support/logging.hh"

namespace vspec
{
namespace sched
{

u32
hardwareJobs()
{
    u32 n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

u32
parseJobs(const std::string &text)
{
    if (text.empty())
        return 0;
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0 || v > 1024)
        return 0;
    return static_cast<u32>(v);
}

u32
defaultJobs()
{
    // Read the environment exactly once: worker threads construct
    // RunConfigs and must never race on getenv.
    static u32 jobs = [] {
        if (const char *env = std::getenv("VSPEC_JOBS")) {
            u32 parsed = parseJobs(env);
            if (parsed != 0)
                return parsed;
            vlog(LogLevel::Warn, "vpar",
                 std::string("malformed VSPEC_JOBS='") + env
                     + "' ignored; using hardware concurrency");
        }
        return hardwareJobs();
    }();
    return jobs;
}

TaskPool::TaskPool(u32 jobs)
    : jobCount(jobs == 0 ? 1 : jobs)
{
    if (jobCount > 1) {
        workers.reserve(jobCount);
        for (u32 i = 0; i < jobCount; i++)
            workers.emplace_back([this] { workerLoop(); });
    }
}

TaskPool::~TaskPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
TaskPool::runTask(Entry &entry)
{
    try {
        entry.fn();
    } catch (...) {
        std::unique_lock<std::mutex> lock(mu);
        captured++;
        if (firstError == nullptr || entry.seq < firstErrorSeq) {
            firstError = std::current_exception();
            firstErrorSeq = entry.seq;
        }
    }
}

void
TaskPool::submit(std::function<void()> task)
{
    Entry entry{std::move(task), nextSeq++};
    if (jobCount == 1) {
        runTask(entry);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mu);
        queue.push_back(std::move(entry));
    }
    cvWork.notify_one();
}

void
TaskPool::wait()
{
    if (jobCount > 1) {
        std::unique_lock<std::mutex> lock(mu);
        cvIdle.wait(lock, [this] {
            return queue.empty() && active == 0;
        });
    }
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu);
        err = firstError;
        firstError = nullptr;
        if (err != nullptr)
            rethrown++;
    }
    if (err != nullptr)
        std::rethrow_exception(err);
}

u64
TaskPool::suppressedErrors() const
{
    std::unique_lock<std::mutex> lock(mu);
    // Errors still pending rethrow (captured, wait() not yet called)
    // are not suppressed — only the overwritten/discarded ones are.
    u64 pending = firstError == nullptr ? 0 : 1;
    return captured - rethrown - pending;
}

u64
TaskPool::capturedErrors() const
{
    std::unique_lock<std::mutex> lock(mu);
    return captured;
}

void
TaskPool::workerLoop()
{
    while (true) {
        Entry entry;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvWork.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return;  // stopping
            entry = std::move(queue.front());
            queue.pop_front();
            active++;
        }
        runTask(entry);
        {
            std::unique_lock<std::mutex> lock(mu);
            active--;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

void
parallelFor(u32 jobs, size_t n, const std::function<void(size_t)> &body,
            u64 *suppressed_errors)
{
    if (suppressed_errors != nullptr)
        *suppressed_errors = 0;
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        // Inline baseline: same error contract as the parallel path —
        // every index runs, the lowest-index (here: first) exception is
        // rethrown afterwards, later ones are counted as suppressed.
        std::exception_ptr first_err;
        u64 errors = 0;
        for (size_t i = 0; i < n; i++) {
            try {
                body(i);
            } catch (...) {
                errors++;
                if (first_err == nullptr)
                    first_err = std::current_exception();
            }
        }
        if (first_err != nullptr) {
            if (suppressed_errors != nullptr)
                *suppressed_errors = errors - 1;
            std::rethrow_exception(first_err);
        }
        return;
    }
    // One task per worker pulling indices from a shared dispenser:
    // cheaper than one queue entry per cell when cells are small.
    std::atomic<size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_err;
    size_t first_err_index = 0;
    u64 errors = 0;
    TaskPool pool(std::min<size_t>(jobs, n));
    for (u32 t = 0; t < pool.jobs(); t++) {
        pool.submit([&] {
            while (true) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    std::unique_lock<std::mutex> lock(err_mu);
                    errors++;
                    if (first_err == nullptr || i < first_err_index) {
                        first_err = std::current_exception();
                        first_err_index = i;
                    }
                }
            }
        });
    }
    pool.wait();
    if (first_err != nullptr) {
        if (suppressed_errors != nullptr)
            *suppressed_errors = errors - 1;
        std::rethrow_exception(first_err);
    }
}

} // namespace sched
} // namespace vspec
