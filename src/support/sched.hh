/**
 * @file
 * vpar scheduling substrate: a bounded worker pool plus an ordered
 * parallel-for used by the experiment harness to execute independent
 * experiment cells concurrently. Job count resolution lives here too
 * (`--jobs=N` / VSPEC_JOBS / hardware concurrency) so every binary
 * agrees on the default.
 *
 * Determinism contract: the pool schedules work in any order, so
 * callers must keep each task independent (vspec cells each own their
 * Engine) and index results by cell. `parallelFor(1, ...)` runs every
 * body inline on the calling thread, in index order, without spawning
 * any thread at all — the `--jobs=1` byte-identical baseline.
 */

#ifndef VSPEC_SUPPORT_SCHED_HH
#define VSPEC_SUPPORT_SCHED_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.hh"

namespace vspec
{
namespace sched
{

/** std::thread::hardware_concurrency clamped to >= 1. */
u32 hardwareJobs();

/**
 * The process-wide default worker count: VSPEC_JOBS when set to a
 * positive integer (read once, cached — cells must never race on
 * getenv), otherwise hardwareJobs(). Malformed values degrade loudly
 * to the hardware default.
 */
u32 defaultJobs();

/** Parse a job count ("4"); returns 0 on malformed/non-positive. */
u32 parseJobs(const std::string &text);

/**
 * Bounded worker pool. Tasks are queued and executed by `jobs` worker
 * threads; wait() blocks until the queue is drained and every worker
 * is idle. With jobs == 1 no thread is spawned and submit() runs the
 * task inline, making the single-job configuration trivially
 * deterministic and sanitizer-quiet.
 *
 * Exceptions thrown by tasks are captured; wait() rethrows the first
 * one (by submission order) after the queue drains. Later failures in
 * the same round are not lost: they are counted as *suppressed* and
 * surfaced through suppressedErrors(), so a caller that survives the
 * rethrow (or a server that must never lose a failure signal) can tell
 * that a multi-failure round happened.
 */
class TaskPool
{
  public:
    explicit TaskPool(u32 jobs);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    void submit(std::function<void()> task);

    /** Drain the queue; rethrows the first captured task exception. */
    void wait();

    /**
     * Task exceptions captured but never rethrown (every captured
     * error beyond the per-round first that wait() re-raises).
     * Monotonic over the pool's lifetime.
     */
    u64 suppressedErrors() const;

    /** Total task exceptions captured over the pool's lifetime. */
    u64 capturedErrors() const;

    u32 jobs() const { return jobCount; }

  private:
    struct Entry
    {
        std::function<void()> fn;
        u64 seq = 0;
    };

    void workerLoop();
    void runTask(Entry &entry);

    u32 jobCount;
    u64 nextSeq = 0;
    std::vector<std::thread> workers;
    std::deque<Entry> queue;
    mutable std::mutex mu;
    std::condition_variable cvWork;   //!< workers: queue non-empty/stop
    std::condition_variable cvIdle;   //!< wait(): drained and idle
    u32 active = 0;
    bool stopping = false;
    std::exception_ptr firstError;
    u64 firstErrorSeq = 0;
    u64 captured = 0;   //!< task exceptions captured since construction
    u64 rethrown = 0;   //!< captured errors re-raised by wait()
};

/**
 * Run body(0..n-1) on up to `jobs` workers and block until every index
 * completes. Index execution order is unspecified for jobs > 1;
 * callers own result ordering (write into slot i). Rethrows the
 * lowest-index exception after all other indices finish; when
 * @p suppressed_errors is non-null it receives the number of *other*
 * captured exceptions that were discarded by that policy (0 when at
 * most one index threw), so multi-failure rounds stay visible.
 */
void parallelFor(u32 jobs, size_t n,
                 const std::function<void(size_t)> &body,
                 u64 *suppressed_errors = nullptr);

} // namespace sched
} // namespace vspec

#endif // VSPEC_SUPPORT_SCHED_HH
