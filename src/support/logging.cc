#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/common.hh"

namespace vspec
{

namespace
{

LogSink &
currentSink()
{
    static LogSink sink;
    return sink;
}

LogLevel &
currentThreshold()
{
    // VSPEC_LOG=debug|info|warn|error adjusts the initial threshold so
    // diagnostic dumps can be enabled without a rebuild.
    static LogLevel threshold = [] {
        if (const char *env = std::getenv("VSPEC_LOG")) {
            switch (env[0]) {
              case 'd': return LogLevel::Debug;
              case 'i': return LogLevel::Info;
              case 'w': return LogLevel::Warn;
              case 'e': return LogLevel::Error;
              default: break;
            }
        }
        return LogLevel::Warn;
    }();
    return threshold;
}

} // namespace

const char *
logLevelName(LogLevel l)
{
    switch (l) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlog(LogLevel level, const std::string &component,
     const std::string &message)
{
    if (level < currentThreshold())
        return;
    const LogSink &sink = currentSink();
    if (sink) {
        sink(level, component, message);
        return;
    }
    std::fprintf(stderr, "[vspec:%s] %s: %s\n", logLevelName(level),
                 component.c_str(), message.c_str());
}

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = std::move(currentSink());
    currentSink() = std::move(sink);
    return prev;
}

void
setLogThreshold(LogLevel level)
{
    currentThreshold() = level;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Unlike gem5's abort()ing panic, vspec panics throw: the paper's
    // check-removal methodology *intentionally* produces corrupted
    // executions in some benchmarks ("16 out of 51 do not complete
    // correctly"), and the experiment harness must survive them to
    // report the failure, exactly as the authors did.
    throw std::runtime_error(std::string("panic: ") + file + ":"
                             + std::to_string(line) + ": " + msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing keeps embedders (and the experiment harness) in control;
    // a library that exit()s is hostile to its host process.
    throw std::runtime_error(std::string("fatal: ") + file + ":"
                             + std::to_string(line) + ": " + msg);
}

} // namespace vspec
