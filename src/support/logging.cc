#include "support/common.hh"

#include <cstdio>
#include <stdexcept>

namespace vspec
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Unlike gem5's abort()ing panic, vspec panics throw: the paper's
    // check-removal methodology *intentionally* produces corrupted
    // executions in some benchmarks ("16 out of 51 do not complete
    // correctly"), and the experiment harness must survive them to
    // report the failure, exactly as the authors did.
    throw std::runtime_error(std::string("panic: ") + file + ":"
                             + std::to_string(line) + ": " + msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing keeps embedders (and the experiment harness) in control;
    // a library that exit()s is hostile to its host process.
    throw std::runtime_error(std::string("fatal: ") + file + ":"
                             + std::to_string(line) + ": " + msg);
}

} // namespace vspec
