/**
 * @file
 * vserve request router: bounded per-isolate queues, admission control
 * with deterministic spillover, virtual-time retry backoff, and the
 * tick loop that is the server's only scheduler.
 *
 * Time is virtual: one tick() = one scheduling round. Within a round,
 * every routing/retry/health decision runs sequentially on the caller's
 * thread; the only parallel section is request *execution* — one task
 * per isolate, each task walking its own batch in queue order against
 * its own engine. Because the batch contents are fixed before the
 * parallel section and no two tasks share state, every Response field
 * except hostMicros is byte-identical at any `--jobs` level.
 *
 * Admission: a request prefers isolate `tenant % N` and spills forward
 * to the next in-rotation isolate with queue room; if every isolate is
 * quarantine-cooling, it queues on the preferred one and waits the
 * cooldown out. Only when no queue has room is the request shed
 * (typed Shed response, never an exception). Retries: a
 * transient-fault attempt is requeued on its
 * own isolate with `backoffBaseTicks << (attempt-1)` ticks of delay
 * until maxAttempts, then surfaces as TransientError.
 */

#ifndef VSPEC_SERVE_ROUTER_HH
#define VSPEC_SERVE_ROUTER_HH

#include <deque>
#include <vector>

#include "serve/pool.hh"
#include "serve/request.hh"
#include "trace/trace.hh"

namespace vspec
{
namespace serve
{

struct RouterOptions
{
    u32 queueCapacity = 32;   //!< per-isolate pending limit
    u32 serviceQuantum = 4;   //!< executions per isolate per tick
    u32 maxAttempts = 3;      //!< total executions for transient faults
    u32 backoffBaseTicks = 2; //!< retry delay: base << (attempt-1)
};

/** Aggregated serving outcomes; every field deterministic. */
struct ServeStats
{
    u64 submitted = 0;
    u64 admitted = 0;
    u64 shed = 0;
    u64 retries = 0;
    u64 quarantines = 0;
    u64 degradations = 0;
    u64 byStatus[static_cast<u32>(ResponseStatus::NumStatuses)] = {};
    u64 byErrorKind[kNumEngineErrorKinds] = {};

    u64 ok() const
    {
        return byStatus[static_cast<u32>(ResponseStatus::Ok)];
    }
    u64 errors() const;
};

class RequestRouter
{
  public:
    RequestRouter(IsolatePool &pool, const RouterOptions &options,
                  Tracer *tracer = nullptr);

    /** Admit (or shed) one request at the current tick. */
    void submit(Request request);

    /** Run one virtual-time scheduling round. */
    void tick();

    /** tick() until idle; @return rounds used (caps at maxTicks). */
    u32 drain(u32 maxTicks);

    bool idle() const;
    u32 now() const { return tickNow; }

    /** Responses in completion order (deterministic). */
    const std::vector<Response> &responses() const { return done; }

    ServeStats stats;

  private:
    struct Pending
    {
        Request req;
        u32 attempts = 0;       //!< executions already performed
        u32 notBeforeTick = 0;  //!< retry backoff gate
    };

    u32 routeFor(const Request &request) const;
    void finish(Response r);
    void note(const char *event, u32 isolate, u64 request_id);

    IsolatePool &pool;
    RouterOptions opts;
    Tracer *tracer;
    u32 tickNow = 0;
    std::vector<std::deque<Pending>> queues;  //!< one per isolate
    std::vector<Response> done;
};

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_ROUTER_HH
