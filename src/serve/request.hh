/**
 * @file
 * vserve request/response model.
 *
 * A Request is one unit of tenant work against an isolate: load and
 * run a script, call an already-loaded entry point, or warm up (JIT) a
 * function ahead of traffic. Every request carries a *deadline* in
 * simulated cycles, mapped onto `EngineConfig::maxFuelCycles` for the
 * duration of the attempt, so a runaway loop costs its own budget and
 * nothing else.
 *
 * A Response is always produced — the serving layer's core guarantee
 * is that no request outcome is a crash. Engine failures arrive as
 * structured EngineErrors (vguard) and are classified here into three
 * buckets that drive policy:
 *
 *   - application errors (TypeError, RegexBudget, StackOverflow): the
 *     *request* is at fault; never retried, no health impact.
 *   - deadline (FuelExhausted under a request deadline): the request
 *     spent its budget; never retried, no health impact.
 *   - transient infrastructure faults (OutOfMemory, CompileFailed):
 *     the *isolate* may be at fault; retried with exponential backoff
 *     and counted against the isolate's health (quarantine policy).
 *
 * Determinism contract: every Response field except `hostMicros` is a
 * pure function of the request stream and the serve configuration —
 * byte-identical at any `--jobs` level. `hostMicros` is the one
 * wall-clock observation and is excluded from digests.
 */

#ifndef VSPEC_SERVE_REQUEST_HH
#define VSPEC_SERVE_REQUEST_HH

#include <string>

#include "runtime/guard.hh"
#include "support/common.hh"

namespace vspec
{
namespace serve
{

enum class RequestKind : u8
{
    Script,  //!< loadProgram + N bench() calls + verify() checksum
    Call,    //!< call one global entry point on the loaded program
    Warmup,  //!< loadProgram + force-JIT one function (compile or fail)
};

const char *requestKindName(RequestKind k);

struct Request
{
    u64 id = 0;          //!< dense, assigned by the traffic generator
    u32 tenant = 0;      //!< routing key (tenant % isolates preferred)
    RequestKind kind = RequestKind::Script;
    std::string program;  //!< Script/Warmup: MiniJS source
    std::string entry;    //!< Call: global name; Warmup: function to JIT
    u32 benchCalls = 0;   //!< Script: bench() invocations after load
    /** Simulated-cycle budget for the whole attempt (0 = no deadline).
     *  Exhaustion surfaces as a DeadlineExceeded response. */
    u64 deadlineCycles = 0;
    u32 arrivalTick = 0;  //!< virtual arrival time (set by the router)
    /** Expected verify() checksum ("" = unvalidated). Filled by the
     *  traffic generator from a clean reference engine. */
    std::string expect;
};

enum class ResponseStatus : u8
{
    Ok,                //!< result holds the display()ed outcome
    Shed,              //!< admission control: no queue had room
    DeadlineExceeded,  //!< attempt exceeded deadlineCycles
    AppError,          //!< the request's own fault — not retried
    TransientError,    //!< infrastructure fault persisted through retries
    NumStatuses,
};

const char *responseStatusName(ResponseStatus s);

struct Response
{
    u64 id = 0;
    RequestKind kind = RequestKind::Script;
    ResponseStatus status = ResponseStatus::Ok;
    /** Valid for DeadlineExceeded/AppError/TransientError. */
    EngineErrorKind errorKind = EngineErrorKind::NumKinds;
    std::string result;   //!< Ok: display()ed value; errors: message
    u32 attempts = 0;     //!< executions performed (0 for Shed)
    u32 isolate = 0;      //!< serving isolate (meaningless for Shed)
    u32 generation = 0;   //!< isolate generation that produced this
    bool degraded = false;  //!< served by an interpreter-only isolate
    u64 simCycles = 0;    //!< simulated cycles of the final attempt
    u32 queueTicks = 0;   //!< virtual latency: completion - arrival
    /** Host wall-clock of the final attempt, microseconds. The only
     *  nondeterministic field — excluded from digests. */
    u64 hostMicros = 0;
};

/** Attempt-level classification driving retry/health policy. */
enum class FaultClass : u8
{
    None,       //!< attempt succeeded
    App,        //!< request's own fault: fail fast
    Deadline,   //!< budget exhausted: fail fast
    Transient,  //!< isolate-side fault: retry, count against health
};

/** Map a structured engine error to its policy bucket. */
inline FaultClass
classifyEngineError(EngineErrorKind kind)
{
    switch (kind) {
      case EngineErrorKind::TypeError:
      case EngineErrorKind::RegexBudget:
      case EngineErrorKind::StackOverflow:
        return FaultClass::App;
      case EngineErrorKind::FuelExhausted:
        return FaultClass::Deadline;
      case EngineErrorKind::OutOfMemory:
      case EngineErrorKind::CompileFailed:
        return FaultClass::Transient;
      case EngineErrorKind::NumKinds:
        break;
    }
    return FaultClass::Transient;  // unknown kinds: be conservative
}

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_REQUEST_HH
