/**
 * @file
 * vserve isolate: one Engine wrapped in a fault containment boundary.
 *
 * An Isolate owns an Engine plus the serving-side state the router's
 * policies need: a health counter (consecutive transient faults), a
 * generation number (bumped on every recycle), and the degraded flag
 * (interpreter-only engine after repeated JIT failure). execute() runs
 * exactly one attempt of one request and *always* returns — every
 * EngineError is caught and classified; anything escaping would be an
 * engine-invariant violation, and a defensive catch-all converts even
 * that into a transient error response rather than tearing the server
 * down.
 *
 * Deadlines ride on the vguard fuel guard: the engine is constructed
 * with a huge fuel sentinel so the simulated core's periodic fuel poll
 * is armed, then each attempt narrows `config.maxFuelCycles` to
 * `totalCycles() + deadlineCycles` and restores the sentinel after.
 * FuelExhausted under a request deadline therefore means *this
 * request* overran, and is reported as DeadlineExceeded.
 *
 * The per-isolate FaultConfig override (Engine::setFaultConfig) models
 * a bad host: it sticks to the isolate slot across recycles, so a
 * quarantine-and-replace cycle faces the same faulty environment —
 * which is exactly what makes graceful degradation worth having.
 */

#ifndef VSPEC_SERVE_ISOLATE_HH
#define VSPEC_SERVE_ISOLATE_HH

#include <memory>
#include <string>

#include "runtime/engine.hh"
#include "serve/request.hh"

namespace vspec
{
namespace serve
{

struct IsolateOptions
{
    u32 heapSize = 16u << 20;   //!< per-isolate simulated heap
    u32 maxInvokeDepth = 64;    //!< recursion bombs die cheap
    u64 randomSeed = 42;
    /** Per-isolate fault schedule override; none() = whatever
     *  VSPEC_FAULT says process-wide is *cleared* for this isolate
     *  unless inheritEnvFaults is set. */
    FaultConfig faults = FaultConfig::none();
    /** Keep the VSPEC_FAULT environment schedule instead of the
     *  explicit `faults` override. */
    bool inheritEnvFaults = false;
    /** Boot program loaded into every fresh engine so Call requests
     *  always find their entry points ("" = none). */
    std::string bootProgram;
};

/** One attempt's outcome, before retry policy is applied. */
struct Attempt
{
    FaultClass fault = FaultClass::None;
    EngineErrorKind errorKind = EngineErrorKind::NumKinds;
    std::string result;  //!< display()ed value or error message
    u64 simCycles = 0;   //!< simulated cycles consumed by the attempt
    u64 hostMicros = 0;
};

class Isolate
{
  public:
    Isolate(u32 id, const IsolateOptions &options);

    /** Run one attempt. Never throws. */
    Attempt execute(const Request &request);

    /** Quarantine replacement: discard the engine, build a fresh one
     *  (same options, same fault override), bump the generation. */
    void recycle();

    /** Drop to interpreter-only: rebuild with optimization off. The
     *  speculation win is traded for availability; the router reports
     *  the trade through ServeDegradations and the degraded flag on
     *  every subsequent response. */
    void degrade();

    /** Total simulated cycles executed by the current engine. */
    u64 simCycles() const { return engine->totalCycles(); }

    u32 id;
    u32 generation = 0;
    bool degraded = false;
    /** Consecutive transient-fault *responses* (maintained by the
     *  router; reset on every Ok). */
    u32 consecutiveFaults = 0;
    /** Tick until which this isolate is out of rotation (quarantine
     *  cooldown); 0 = available. */
    u32 cooldownUntilTick = 0;
    /** Requests answered Ok by the current engine. */
    u64 served = 0;
    /** Quarantine replacements over the slot's lifetime. */
    u32 quarantines = 0;
    /** Quarantines whose triggering fault was CompileFailed — the
     *  flapping-JIT signal that escalates to degradation. */
    u32 compileQuarantines = 0;

    std::unique_ptr<Engine> engine;

  private:
    void rebuild();

    IsolateOptions options;
};

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_ISOLATE_HH
