#include "serve/isolate.hh"

#include <chrono>

#include "bytecode/compiler.hh"
#include "support/logging.hh"

namespace vspec
{
namespace serve
{

namespace
{

/** Constructed-in fuel budget: effectively infinite, but nonzero so
 *  the simulated core's periodic fuel poll is armed from birth and
 *  per-request deadline narrowing takes effect mid-attempt. */
constexpr u64 kFuelSentinel = ~0ull >> 2;

u64
nowMicros()
{
    using clk = std::chrono::steady_clock;
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            clk::now().time_since_epoch())
            .count());
}

} // namespace

const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::Script: return "script";
      case RequestKind::Call: return "call";
      case RequestKind::Warmup: return "warmup";
    }
    return "?";
}

const char *
responseStatusName(ResponseStatus s)
{
    switch (s) {
      case ResponseStatus::Ok: return "ok";
      case ResponseStatus::Shed: return "shed";
      case ResponseStatus::DeadlineExceeded: return "deadline";
      case ResponseStatus::AppError: return "app_error";
      case ResponseStatus::TransientError: return "transient_error";
      case ResponseStatus::NumStatuses: break;
    }
    return "?";
}

Isolate::Isolate(u32 id, const IsolateOptions &options)
    : id(id),
      options(options)
{
    rebuild();
}

void
Isolate::rebuild()
{
    EngineConfig cfg;
    cfg.heapSize = options.heapSize;
    cfg.maxInvokeDepth = options.maxInvokeDepth;
    cfg.randomSeed = options.randomSeed;
    cfg.samplerEnabled = false;
    cfg.trace = TraceConfig{};  // serve tracing lives on the router
    cfg.maxFuelCycles = kFuelSentinel;
    cfg.enableOptimization = !degraded;
    cfg.faults = options.inheritEnvFaults ? FaultConfig::fromEnv()
                                          : options.faults;
    engine = std::make_unique<Engine>(cfg);
    if (!options.bootProgram.empty()) {
        try {
            engine->loadProgram(options.bootProgram);
        } catch (const std::exception &e) {
            // A fault schedule nasty enough to kill the boot program
            // leaves the isolate up with no entry points: Call requests
            // answer TypeError, which is still a typed response.
            vlog(LogLevel::Warn, "vserve",
                 "isolate " + std::to_string(id) + " boot failed: "
                     + e.what());
        }
    }
}

void
Isolate::recycle()
{
    generation++;
    consecutiveFaults = 0;
    served = 0;
    rebuild();
}

void
Isolate::degrade()
{
    degraded = true;
    recycle();
}

Attempt
Isolate::execute(const Request &request)
{
    Attempt attempt;
    Engine &eng = *engine;
    u64 before = eng.totalCycles();
    u64 host0 = nowMicros();
    if (request.deadlineCycles != 0)
        eng.config.maxFuelCycles = before + request.deadlineCycles;
    try {
        switch (request.kind) {
          case RequestKind::Script: {
            eng.loadProgram(request.program);
            for (u32 i = 0; i < request.benchCalls; i++)
                eng.call("bench");
            attempt.result = eng.vm.display(eng.call("verify"));
            break;
          }
          case RequestKind::Call: {
            attempt.result = eng.vm.display(eng.call(request.entry));
            break;
          }
          case RequestKind::Warmup: {
            eng.loadProgram(request.program);
            // Gather type feedback before the explicit compile, like a
            // natural tier-up would; a feedback-free graph build is not
            // a fair JIT-health probe.
            for (u32 i = 0; i < request.benchCalls; i++)
                eng.call("bench");
            if (degraded) {
                // The trade made explicit: a degraded isolate refuses
                // to JIT but keeps serving (interpreter tier).
                attempt.result = "degraded:interpreter-only";
                break;
            }
            FunctionId fn = eng.functions.idOf(request.entry);
            if (fn == kInvalidFunction)
                throw EngineError(EngineErrorKind::TypeError,
                                  "unknown warmup entry '"
                                      + request.entry + "'");
            if (!eng.compileFunction(eng.functions.at(fn)))
                throw EngineError(EngineErrorKind::CompileFailed,
                                  "warmup compile failed for '"
                                      + request.entry + "'");
            attempt.result = "warmed:" + request.entry;
            break;
          }
        }
    } catch (const EngineError &e) {
        attempt.errorKind = e.kind;
        attempt.fault = classifyEngineError(e.kind);
        attempt.result = e.what();
    } catch (const std::exception &e) {
        // Parse/compile errors in the request's own source (MiniJS
        // CompileError et al.): the request is at fault.
        attempt.fault = FaultClass::App;
        attempt.result = e.what();
    } catch (...) {
        attempt.fault = FaultClass::Transient;
        attempt.result = "unclassified engine failure";
    }
    eng.config.maxFuelCycles = kFuelSentinel;
    attempt.simCycles = eng.totalCycles() - before;
    attempt.hostMicros = nowMicros() - host0;
    return attempt;
}

} // namespace serve
} // namespace vspec
