#include "serve/soak.hh"

#include <algorithm>
#include <chrono>
#include <map>

namespace vspec
{
namespace serve
{

namespace
{

constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

u64
fnvU64(u64 v, u64 h)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

u64
fnvStr(const std::string &s, u64 h)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

template <typename T>
T
percentile(std::vector<T> sorted, double p)
{
    if (sorted.empty())
        return T{};
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
nowSeconds()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

} // namespace

u64
responseDigest(const std::vector<Response> &responses)
{
    u64 h = kFnvOffset;
    for (const Response &r : responses) {
        h = fnvU64(r.id, h);
        h = fnvU64(static_cast<u64>(r.kind), h);
        h = fnvU64(static_cast<u64>(r.status), h);
        h = fnvU64(static_cast<u64>(r.errorKind), h);
        h = fnvU64(r.attempts, h);
        h = fnvU64(r.isolate, h);
        h = fnvU64(r.generation, h);
        h = fnvU64(r.degraded ? 1 : 0, h);
        h = fnvU64(r.simCycles, h);
        h = fnvU64(r.queueTicks, h);
        h = fnvStr(r.result, h);
    }
    return h;
}

SoakReport
runSoak(const SoakOptions &options)
{
    // Traffic first: generation (and reference checksums) must not
    // overlap the timed serving window.
    std::vector<std::vector<Request>> schedule =
        generateTraffic(options.traffic);
    std::map<u64, std::string> expected;
    for (const auto &tick_requests : schedule)
        for (const Request &r : tick_requests)
            if (!r.expect.empty())
                expected[r.id] = r.expect;

    PoolOptions po;
    po.isolates = options.isolates;
    po.jobs = options.jobs;
    po.isolate.bootProgram = bootProgram();
    po.isolate.faults = options.fleetFaults;
    po.isolate.inheritEnvFaults = options.inheritEnvFaults;
    po.targetIsolate = options.targetIsolate;
    po.targetFaults = options.targetFaults;
    po.quarantineAfter = options.quarantineAfter;
    po.cooldownTicks = options.cooldownTicks;
    po.degradeAfterCompileQuarantines =
        options.degradeAfterCompileQuarantines;

    Tracer tracer(TraceConfig::fromEnv());  // VSPEC_TRACE=serve works
    IsolatePool pool(po);
    RequestRouter router(pool, options.router, &tracer);

    double host0 = nowSeconds();
    for (auto &tick_requests : schedule) {
        for (Request &r : tick_requests)
            router.submit(std::move(r));
        router.tick();
    }
    u32 arrival_ticks = router.now();
    u32 drain_ticks = router.drain(options.maxDrainTicks);
    double host1 = nowSeconds();

    SoakReport report;
    report.stats = router.stats;
    report.responses = router.responses();
    report.ticks = arrival_ticks + drain_ticks;
    report.digest = responseDigest(report.responses);

    std::vector<u32> latencies;
    std::vector<u64> host_micros;
    u64 ok_jit_cycles = 0, ok_jit_count = 0;
    u64 ok_deg_cycles = 0, ok_deg_count = 0;
    for (const Response &r : report.responses) {
        if (r.status != ResponseStatus::Shed) {
            latencies.push_back(r.queueTicks);
            host_micros.push_back(r.hostMicros);
        }
        if (r.status == ResponseStatus::Ok) {
            // The degradation trade is measured over Script requests
            // only: warmups on a degraded isolate short-circuit to a
            // near-free typed answer and would skew the average.
            if (r.kind == RequestKind::Script) {
                if (r.degraded) {
                    ok_deg_cycles += r.simCycles;
                    ok_deg_count++;
                } else {
                    ok_jit_cycles += r.simCycles;
                    ok_jit_count++;
                }
            }
            auto it = expected.find(r.id);
            if (it != expected.end() && it->second != r.result)
                report.validationFailures++;
        }
    }
    report.latencyP50 = percentile(latencies, 0.50);
    report.latencyP90 = percentile(latencies, 0.90);
    report.latencyP99 = percentile(latencies, 0.99);
    report.hostP50Micros = percentile(host_micros, 0.50);
    report.hostP99Micros = percentile(host_micros, 0.99);
    if (ok_jit_count > 0)
        report.avgOkCyclesJit =
            static_cast<double>(ok_jit_cycles)
            / static_cast<double>(ok_jit_count);
    if (ok_deg_count > 0)
        report.avgOkCyclesDegraded =
            static_cast<double>(ok_deg_cycles)
            / static_cast<double>(ok_deg_count);

    for (u32 i = 0; i < pool.size(); i++) {
        report.isolateSimCycles.push_back(pool.at(i).simCycles());
        report.isolateGenerations.push_back(pool.at(i).generation);
        if (pool.at(i).degraded)
            report.degradedIsolates++;
    }
    // Fold the deterministic aggregates into the digest too, so a
    // policy divergence shows even when the response stream agrees.
    u64 h = report.digest;
    h = fnvU64(report.stats.submitted, h);
    h = fnvU64(report.stats.shed, h);
    h = fnvU64(report.stats.retries, h);
    h = fnvU64(report.stats.quarantines, h);
    h = fnvU64(report.stats.degradations, h);
    for (u64 c : report.isolateSimCycles)
        h = fnvU64(c, h);
    for (u32 g : report.isolateGenerations)
        h = fnvU64(g, h);
    report.digest = h;

    report.hostWallSeconds = host1 - host0;
    if (report.hostWallSeconds > 0)
        report.throughputRps =
            static_cast<double>(report.responses.size())
            / report.hostWallSeconds;
    return report;
}

} // namespace serve
} // namespace vspec
