/**
 * @file
 * vserve soak harness: one call that builds the pool, routes a whole
 * deterministic traffic schedule through it, and reduces the outcome
 * to a report the bench, the CLI, and the tests all share.
 *
 * The report splits cleanly along the determinism contract:
 *
 *  - Deterministic (digest-covered): every response field except
 *    hostMicros, the aggregated ServeStats, virtual-latency
 *    percentiles in ticks, per-isolate simulated cycle totals, and
 *    the validation verdicts. Byte-identical at any `--jobs` level —
 *    `verifyDeterminism` in the CLI re-runs at jobs=1 and compares
 *    digests.
 *
 *  - Host-side (informational): wall seconds, throughput, host
 *    latency percentiles. This is the part the tentpole actually
 *    measures; it rides in BENCH_host.json as informational entries.
 */

#ifndef VSPEC_SERVE_SOAK_HH
#define VSPEC_SERVE_SOAK_HH

#include <vector>

#include "serve/router.hh"
#include "serve/traffic.hh"

namespace vspec
{
namespace serve
{

struct SoakOptions
{
    u32 isolates = 4;
    u32 jobs = 0;  //!< execution workers (0 = one per isolate)
    TrafficOptions traffic;
    RouterOptions router;

    /** Fault schedule for every isolate ("the whole fleet is on a bad
     *  kernel"); none() = clean unless inheritEnvFaults. */
    FaultConfig fleetFaults = FaultConfig::none();
    /** Honour VSPEC_FAULT for the fleet template instead. */
    bool inheritEnvFaults = false;
    /** The one bad host: this slot gets targetFaults (kNoIsolate =
     *  none). Overrides fleetFaults/env for that slot. */
    u32 targetIsolate = kNoIsolate;
    FaultConfig targetFaults = FaultConfig::none();

    // Health policy (forwarded to PoolOptions).
    u32 quarantineAfter = 3;
    u32 cooldownTicks = 8;
    u32 degradeAfterCompileQuarantines = 2;

    u32 maxDrainTicks = 100000;  //!< post-arrival drain cap
};

struct SoakReport
{
    ServeStats stats;
    std::vector<Response> responses;  //!< completion order
    u32 ticks = 0;          //!< virtual duration (arrivals + drain)
    u64 digest = 0;         //!< FNV over all deterministic outcome data
    u32 validationFailures = 0;  //!< Ok results != reference checksum

    // Virtual latency (ticks) over non-shed responses: deterministic.
    u32 latencyP50 = 0, latencyP90 = 0, latencyP99 = 0;

    // Per-isolate end state: deterministic.
    std::vector<u64> isolateSimCycles;
    std::vector<u32> isolateGenerations;
    u32 degradedIsolates = 0;

    // The speculation-for-availability trade, made explicit: mean
    // simulated cycles of Ok responses served by JIT-enabled vs
    // degraded isolates. Deterministic.
    double avgOkCyclesJit = 0.0;
    double avgOkCyclesDegraded = 0.0;

    // Host-side, informational: NOT digest-covered.
    double hostWallSeconds = 0.0;
    double throughputRps = 0.0;
    u64 hostP50Micros = 0, hostP99Micros = 0;
};

/** Deterministic digest of a response stream (hostMicros excluded). */
u64 responseDigest(const std::vector<Response> &responses);

/** Run the whole soak. Never throws for request-level failures; a
 *  throw here is a harness bug, not a serving outcome. */
SoakReport runSoak(const SoakOptions &options);

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_SOAK_HH
