/**
 * @file
 * vserve isolate pool: N isolates, a shared worker pool, and the
 * health policy (circuit breaker + degradation escalation).
 *
 * Policy, applied by recordOutcome() on every *final* response:
 *
 *   - Ok resets the isolate's consecutive-transient-fault streak.
 *   - A transient-fault response (retries exhausted) extends it.
 *     Application errors and deadline hits say nothing about the
 *     isolate and leave the streak untouched.
 *   - At `quarantineAfter` consecutive transient faults the isolate is
 *     quarantined: its engine is discarded, a fresh one (same options,
 *     same per-isolate fault override — the faulty host sticks to the
 *     slot) is built, and the slot sits out `cooldownTicks` of virtual
 *     time while its tenants spill over to neighbours.
 *   - When the triggering fault of a quarantine is CompileFailed for
 *     the `degradeAfterCompileQuarantines`-th time, the JIT itself is
 *     judged unhealthy and the isolate is rebuilt interpreter-only
 *     (graceful degradation): the paper's measured speculation win is
 *     traded for availability, and every subsequent response carries
 *     the `degraded` flag so the trade is visible, never silent.
 *
 * All policy state transitions run on the router's sequential tick
 * path — worker threads only execute requests — so outcomes are
 * byte-identical at any job count.
 */

#ifndef VSPEC_SERVE_POOL_HH
#define VSPEC_SERVE_POOL_HH

#include <memory>
#include <vector>

#include "serve/isolate.hh"
#include "support/sched.hh"

namespace vspec
{
namespace serve
{

constexpr u32 kNoIsolate = 0xffffffffu;

struct PoolOptions
{
    u32 isolates = 4;
    /** Worker threads for per-tick isolate execution (0 = one per
     *  isolate). jobs=1 is the deterministic inline baseline. */
    u32 jobs = 0;
    /** Template for every isolate; per-isolate randomSeed is derived
     *  from it (seed + isolate id) so heaps differ deterministically. */
    IsolateOptions isolate;
    /** Isolate slot that gets `targetFaults` instead of the template
     *  schedule (kNoIsolate = none) — the one bad host in the fleet. */
    u32 targetIsolate = kNoIsolate;
    FaultConfig targetFaults = FaultConfig::none();

    // Health policy.
    u32 quarantineAfter = 3;  //!< K consecutive transient faults
    u32 cooldownTicks = 8;
    u32 degradeAfterCompileQuarantines = 2;
};

class IsolatePool
{
  public:
    explicit IsolatePool(const PoolOptions &options);

    u32 size() const { return static_cast<u32>(isolates.size()); }
    Isolate &at(u32 i) { return *isolates[i]; }
    const Isolate &at(u32 i) const { return *isolates[i]; }

    /** In rotation at @p tick (not cooling down after quarantine)? */
    bool available(u32 i, u32 tick) const
    {
        return isolates[i]->cooldownUntilTick <= tick;
    }

    /** Health-policy verdict for one final response. */
    enum class Action : u8
    {
        None,
        Quarantined,  //!< engine replaced, slot cooling down
        Degraded,     //!< engine replaced interpreter-only
    };

    /**
     * Apply the health policy to a final response on isolate @p i.
     * Must be called from the sequential router path only.
     */
    Action recordOutcome(u32 i, FaultClass fault, EngineErrorKind kind,
                         u32 tick);

    /** The shared execution workers (one task per isolate per tick). */
    sched::TaskPool &workers() { return taskPool; }

    const PoolOptions &options() const { return opts; }

  private:
    PoolOptions opts;
    std::vector<std::unique_ptr<Isolate>> isolates;
    sched::TaskPool taskPool;
};

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_POOL_HH
