#include "serve/traffic.hh"

#include "runtime/engine.hh"
#include "support/fuzz_gen.hh"
#include "support/random.hh"

namespace vspec
{
namespace serve
{

namespace
{

// Adversarial templates. Each is a complete workload-protocol program
// whose bench() detonates; classification happens in serve/request.hh.

const char *const kFuelBomb = R"(
var sink = 0;
function bench() {
  for (var i = 0; i < 1000000000; i = i + 1) { sink = (sink + i) | 0; }
  return sink;
}
function verify() { return sink; }
)";

const char *const kRecursionBomb = R"(
function r(n) { return r(n + 1); }
function bench() { return r(1); }
function verify() { return 0; }
)";

const char *const kTypeBomb = R"(
var x = 5;
function bench() { return x(3); }
function verify() { return 0; }
)";

const char *const kRegexBomb = R"(
function bench() {
  return reTest("(a+)+(a+)+b", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
}
function verify() { return 0; }
)";

const char *const kBootProgram = R"(
var total = 0;
function work(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) { s = (s + i * 3) | 0; }
  return s;
}
function bench() { total = (total + work(200)) | 0; return total; }
function verify() { return total; }
)";

/** Clean-engine reference run for a good script's checksum. */
std::string
referenceChecksum(const std::string &program, u32 bench_calls)
{
    EngineConfig cfg;
    cfg.heapSize = 16u << 20;
    cfg.samplerEnabled = false;
    cfg.faults = FaultConfig::none();
    cfg.trace = TraceConfig{};
    Engine engine(cfg);
    engine.loadProgram(program);
    for (u32 i = 0; i < bench_calls; i++)
        engine.call("bench");
    return engine.vm.display(engine.call("verify"));
}

} // namespace

const char *
bootProgram()
{
    return kBootProgram;
}

const char *
warmupProgram()
{
    // The boot program doubles as the warmup target: `work` is a tight
    // monomorphic SMI loop that any healthy JIT must compile.
    return kBootProgram;
}

std::vector<std::vector<Request>>
generateTraffic(const TrafficOptions &options)
{
    std::vector<std::vector<Request>> schedule;
    Rng rng(options.seed);
    u32 arrivals =
        options.arrivalsPerTick == 0 ? 1 : options.arrivalsPerTick;
    u32 burst_left = 0;
    u32 burst_tenant = 0;

    for (u64 id = 0; id < options.requests; id++) {
        u32 tick = static_cast<u32>(id / arrivals);
        if (schedule.size() <= tick)
            schedule.resize(tick + 1);

        Request r;
        r.id = id;
        if (burst_left > 0) {
            burst_left--;
            r.tenant = burst_tenant;
            r.kind = RequestKind::Warmup;
            r.program = warmupProgram();
            r.entry = "work";
            r.benchCalls = 2;  // feedback before the forced compile
            r.deadlineCycles = options.scriptDeadlineCycles;
            schedule[tick].push_back(std::move(r));
            continue;
        }

        r.tenant = static_cast<u32>(rng.nextBelow(options.tenants));
        u32 roll = static_cast<u32>(rng.nextBelow(100));
        u32 cut_call = options.pctCall;
        u32 cut_warm = cut_call + options.pctWarmupBurst;
        u32 cut_fuel = cut_warm + options.pctFuelBomb;
        u32 cut_rec = cut_fuel + options.pctRecursionBomb;
        u32 cut_type = cut_rec + options.pctTypeBomb;
        u32 cut_re = cut_type + options.pctRegexBomb;

        if (roll < cut_call) {
            r.kind = RequestKind::Call;
            r.entry = "bench";
            r.deadlineCycles = options.scriptDeadlineCycles;
        } else if (roll < cut_warm) {
            r.kind = RequestKind::Warmup;
            r.program = warmupProgram();
            r.entry = "work";
            r.benchCalls = 2;
            r.deadlineCycles = options.scriptDeadlineCycles;
            if (options.warmupBurst > 1) {
                burst_left = options.warmupBurst - 1;
                burst_tenant = r.tenant;
            }
        } else if (roll < cut_fuel) {
            r.kind = RequestKind::Script;
            r.program = kFuelBomb;
            r.benchCalls = 1;
            r.deadlineCycles = options.bombDeadlineCycles;
        } else if (roll < cut_rec) {
            r.kind = RequestKind::Script;
            r.program = kRecursionBomb;
            r.benchCalls = 1;
            r.deadlineCycles = options.scriptDeadlineCycles;
        } else if (roll < cut_type) {
            r.kind = RequestKind::Script;
            r.program = kTypeBomb;
            r.benchCalls = 1;
            r.deadlineCycles = options.scriptDeadlineCycles;
        } else if (roll < cut_re) {
            r.kind = RequestKind::Script;
            r.program = kRegexBomb;
            r.benchCalls = 1;
            r.deadlineCycles = options.scriptDeadlineCycles;
        } else {
            r.kind = RequestKind::Script;
            r.program = generateFuzzProgram(options.seed * 1000003u + id);
            r.benchCalls = 1 + static_cast<u32>(rng.nextBelow(3));
            r.deadlineCycles = options.scriptDeadlineCycles;
            if (options.validate)
                r.expect = referenceChecksum(r.program, r.benchCalls);
        }
        schedule[tick].push_back(std::move(r));
    }
    return schedule;
}

} // namespace serve
} // namespace vspec
