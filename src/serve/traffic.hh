/**
 * @file
 * vserve synthetic traffic: a deterministic open-loop request stream.
 *
 * Everything is derived from one seed through support/random, so a
 * seed identifies the whole soak forever. The mix interleaves good
 * tenant work (seeded fuzz_gen programs with precomputed reference
 * checksums), warm calls against each isolate's boot program, and five
 * adversarial templates that between them exercise every
 * EngineErrorKind the serving layer must contain:
 *
 *   fuel bomb       infinite loop + tight deadline  -> FuelExhausted
 *   recursion bomb  unbounded self-call             -> StackOverflow
 *   type bomb       calls a number                  -> TypeError
 *   regex bomb      catastrophic backtracking       -> RegexBudget
 *   warmup burst    K+1 forced JIT compiles on one tenant; on a
 *                   compile-fault-injected isolate -> CompileFailed
 *                   streak -> quarantine/degradation
 *
 * OutOfMemory arrives through the pool's per-isolate fault override
 * (alloc-fail schedules), not through a program template — matching
 * production, where OOM is an environment property, not request
 * content.
 *
 * Reference checksums for good scripts are computed at generation time
 * on a throwaway clean engine (faults cleared, same bench-call count),
 * so the soak can assert end-to-end that surviving the fault matrix
 * never corrupted a good result.
 */

#ifndef VSPEC_SERVE_TRAFFIC_HH
#define VSPEC_SERVE_TRAFFIC_HH

#include <string>
#include <vector>

#include "serve/request.hh"

namespace vspec
{
namespace serve
{

struct TrafficOptions
{
    u32 requests = 300;       //!< total requests to generate
    u32 tenants = 16;
    u32 arrivalsPerTick = 4;  //!< open-loop arrival rate
    u64 seed = 1;
    /** Compute reference checksums for good scripts (costs one clean
     *  engine run per script at generation time). */
    bool validate = true;
    u64 scriptDeadlineCycles = 20'000'000;  //!< generous: good work fits
    u64 bombDeadlineCycles = 200'000;       //!< tight: bombs die fast
    u32 warmupBurst = 4;  //!< consecutive Warmups per burst (> K)

    // Mix weights out of 100 (remainder = good scripts).
    u32 pctCall = 10;
    u32 pctWarmupBurst = 8;  //!< chance to *start* a burst
    u32 pctFuelBomb = 5;
    u32 pctRecursionBomb = 3;
    u32 pctTypeBomb = 3;
    u32 pctRegexBomb = 3;
};

/** The boot program every fresh isolate engine loads: gives Call
 *  requests a guaranteed entry point and warms the allocator. */
const char *bootProgram();

/** The warmup-burst program (must JIT-compile cleanly on a healthy
 *  engine); entry point for RequestKind::Warmup is "work". */
const char *warmupProgram();

/**
 * Generate the whole request schedule up front, grouped by arrival
 * tick: schedule()[t] holds the requests arriving at virtual tick t.
 */
std::vector<std::vector<Request>>
generateTraffic(const TrafficOptions &options);

} // namespace serve
} // namespace vspec

#endif // VSPEC_SERVE_TRAFFIC_HH
