#include "serve/router.hh"

namespace vspec
{
namespace serve
{

u64
ServeStats::errors() const
{
    u64 n = 0;
    n += byStatus[static_cast<u32>(ResponseStatus::DeadlineExceeded)];
    n += byStatus[static_cast<u32>(ResponseStatus::AppError)];
    n += byStatus[static_cast<u32>(ResponseStatus::TransientError)];
    return n;
}

RequestRouter::RequestRouter(IsolatePool &pool,
                             const RouterOptions &options, Tracer *tracer)
    : pool(pool),
      opts(options),
      tracer(tracer),
      queues(pool.size())
{
}

void
RequestRouter::note(const char *event, u32 isolate, u64 request_id)
{
    if (tracer != nullptr && tracer->on(TraceCategory::Serve))
        tracer->emit(TraceCategory::Serve, TraceEventKind::Instant,
                     event, tickNow, isolate,
                     static_cast<u32>(request_id), request_id);
}

u32
RequestRouter::routeFor(const Request &request) const
{
    u32 n = pool.size();
    u32 preferred = request.tenant % n;
    for (u32 k = 0; k < n; k++) {
        u32 i = (preferred + k) % n;
        if (pool.available(i, tickNow)
            && queues[i].size() < opts.queueCapacity)
            return i;
    }
    // Every in-rotation isolate is full (or the whole pool is cooling
    // down). Queueing on a cooling isolate beats dropping the request —
    // it just waits out the cooldown; shed only when queues are full.
    for (u32 k = 0; k < n; k++) {
        u32 i = (preferred + k) % n;
        if (queues[i].size() < opts.queueCapacity)
            return i;
    }
    return kNoIsolate;
}

void
RequestRouter::submit(Request request)
{
    stats.submitted++;
    request.arrivalTick = tickNow;
    u32 i = routeFor(request);
    if (i == kNoIsolate) {
        // Load shedding: a typed rejection beats an unbounded queue.
        stats.shed++;
        if (tracer != nullptr)
            tracer->counters.add(TraceCounter::ServeShed);
        note("shed", 0, request.id);
        Response r;
        r.id = request.id;
        r.kind = request.kind;
        r.status = ResponseStatus::Shed;
        r.result = "queue saturated";
        finish(std::move(r));
        return;
    }
    stats.admitted++;
    if (tracer != nullptr)
        tracer->counters.add(TraceCounter::ServeRequests);
    note("admit", i, request.id);
    queues[i].push_back(Pending{std::move(request), 0, tickNow});
}

void
RequestRouter::finish(Response r)
{
    stats.byStatus[static_cast<u32>(r.status)]++;
    if (r.errorKind != EngineErrorKind::NumKinds)
        stats.byErrorKind[static_cast<u32>(r.errorKind)]++;
    if (tracer != nullptr) {
        switch (r.status) {
          case ResponseStatus::DeadlineExceeded:
            tracer->counters.add(TraceCounter::ServeDeadlineExceeded);
            tracer->counters.add(TraceCounter::ServeErrors);
            break;
          case ResponseStatus::AppError:
          case ResponseStatus::TransientError:
            tracer->counters.add(TraceCounter::ServeErrors);
            break;
          case ResponseStatus::Ok:
          case ResponseStatus::Shed:
          case ResponseStatus::NumStatuses:
            break;
        }
    }
    done.push_back(std::move(r));
}

void
RequestRouter::tick()
{
    u32 n = pool.size();

    // 1. Sequentially fix this round's batches: up to serviceQuantum
    //    backoff-eligible requests per in-rotation isolate, in queue
    //    order. Fixed before any execution → jobs-count independent.
    std::vector<std::vector<Pending>> batches(n);
    for (u32 i = 0; i < n; i++) {
        if (!pool.available(i, tickNow))
            continue;
        std::deque<Pending> &q = queues[i];
        std::vector<Pending> &batch = batches[i];
        for (auto it = q.begin();
             it != q.end() && batch.size() < opts.serviceQuantum;) {
            if (it->notBeforeTick <= tickNow) {
                batch.push_back(std::move(*it));
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    }

    // 2. Parallel section: one task per isolate, each executing its
    //    own batch in order against its own engine. execute() never
    //    throws; tasks share nothing.
    std::vector<std::vector<Attempt>> results(n);
    sched::TaskPool &workers = pool.workers();
    for (u32 i = 0; i < n; i++) {
        if (batches[i].empty())
            continue;
        results[i].resize(batches[i].size());
        workers.submit([this, i, &batches, &results] {
            Isolate &iso = pool.at(i);
            for (size_t j = 0; j < batches[i].size(); j++)
                results[i][j] = iso.execute(batches[i][j].req);
        });
    }
    workers.wait();

    // 3. Sequential policy pass in isolate order: retries, responses,
    //    health transitions.
    for (u32 i = 0; i < n; i++) {
        for (size_t j = 0; j < batches[i].size(); j++) {
            Pending &p = batches[i][j];
            Attempt &a = results[i][j];
            p.attempts++;
            if (a.fault == FaultClass::Transient
                && p.attempts < opts.maxAttempts) {
                stats.retries++;
                if (tracer != nullptr)
                    tracer->counters.add(TraceCounter::ServeRetries);
                note("retry", i, p.req.id);
                p.notBeforeTick =
                    tickNow
                    + (opts.backoffBaseTicks << (p.attempts - 1));
                queues[i].push_back(std::move(p));
                continue;
            }

            const Isolate &iso = pool.at(i);
            Response r;
            r.id = p.req.id;
            r.kind = p.req.kind;
            r.errorKind = a.errorKind;
            r.result = a.result;
            r.attempts = p.attempts;
            r.isolate = i;
            r.generation = iso.generation;
            r.degraded = iso.degraded;
            r.simCycles = a.simCycles;
            r.queueTicks = tickNow - p.req.arrivalTick;
            r.hostMicros = a.hostMicros;
            switch (a.fault) {
              case FaultClass::None:
                r.status = ResponseStatus::Ok;
                break;
              case FaultClass::App:
                r.status = ResponseStatus::AppError;
                break;
              case FaultClass::Deadline:
                r.status = ResponseStatus::DeadlineExceeded;
                break;
              case FaultClass::Transient:
                r.status = ResponseStatus::TransientError;
                break;
            }
            finish(std::move(r));

            switch (pool.recordOutcome(i, a.fault, a.errorKind,
                                       tickNow)) {
              case IsolatePool::Action::Quarantined:
                stats.quarantines++;
                if (tracer != nullptr)
                    tracer->counters.add(TraceCounter::ServeQuarantines);
                note("quarantine", i, p.req.id);
                break;
              case IsolatePool::Action::Degraded:
                stats.degradations++;
                if (tracer != nullptr)
                    tracer->counters.add(
                        TraceCounter::ServeDegradations);
                note("degrade", i, p.req.id);
                break;
              case IsolatePool::Action::None:
                break;
            }
        }
    }

    tickNow++;
}

bool
RequestRouter::idle() const
{
    for (const auto &q : queues)
        if (!q.empty())
            return false;
    return true;
}

u32
RequestRouter::drain(u32 maxTicks)
{
    u32 used = 0;
    while (!idle() && used < maxTicks) {
        tick();
        used++;
    }
    return used;
}

} // namespace serve
} // namespace vspec
