#include "serve/pool.hh"

namespace vspec
{
namespace serve
{

IsolatePool::IsolatePool(const PoolOptions &options)
    : opts(options),
      taskPool(options.jobs == 0 ? options.isolates : options.jobs)
{
    isolates.reserve(opts.isolates);
    for (u32 i = 0; i < opts.isolates; i++) {
        IsolateOptions io = opts.isolate;
        io.randomSeed = opts.isolate.randomSeed + i;
        if (i == opts.targetIsolate) {
            io.faults = opts.targetFaults;
            io.inheritEnvFaults = false;
        }
        isolates.push_back(std::make_unique<Isolate>(i, io));
    }
}

IsolatePool::Action
IsolatePool::recordOutcome(u32 i, FaultClass fault, EngineErrorKind kind,
                           u32 tick)
{
    Isolate &iso = *isolates[i];
    if (fault == FaultClass::None) {
        iso.consecutiveFaults = 0;
        iso.served++;
        return Action::None;
    }
    if (fault != FaultClass::Transient)
        return Action::None;  // app/deadline: not the isolate's fault
    iso.consecutiveFaults++;
    if (iso.consecutiveFaults < opts.quarantineAfter)
        return Action::None;

    iso.quarantines++;
    bool degrade = false;
    if (kind == EngineErrorKind::CompileFailed) {
        iso.compileQuarantines++;
        degrade = !iso.degraded
                  && iso.compileQuarantines
                         >= opts.degradeAfterCompileQuarantines;
    }
    if (degrade)
        iso.degrade();
    else
        iso.recycle();
    iso.cooldownUntilTick = tick + opts.cooldownTicks;
    return degrade ? Action::Degraded : Action::Quarantined;
}

} // namespace serve
} // namespace vspec
