#include "isa/isa.hh"

namespace vspec
{

const char *
isaFlavourName(IsaFlavour f)
{
    return f == IsaFlavour::X64Like ? "x64" : "arm64";
}

const char *
mopName(MOp op)
{
    switch (op) {
      case MOp::Nop: return "nop";
      case MOp::Add: return "add";
      case MOp::Sub: return "sub";
      case MOp::Mul: return "mul";
      case MOp::SDiv: return "sdiv";
      case MOp::And: return "and";
      case MOp::Orr: return "orr";
      case MOp::Eor: return "eor";
      case MOp::Lsl: return "lsl";
      case MOp::Lsr: return "lsr";
      case MOp::Asr: return "asr";
      case MOp::Adds: return "adds";
      case MOp::Subs: return "subs";
      case MOp::Smull: return "smull";
      case MOp::AddI: return "add";
      case MOp::SubI: return "sub";
      case MOp::AndI: return "and";
      case MOp::OrrI: return "orr";
      case MOp::EorI: return "eor";
      case MOp::LslI: return "lsl";
      case MOp::LsrI: return "lsr";
      case MOp::AsrI: return "asr";
      case MOp::AddsI: return "adds";
      case MOp::SubsI: return "subs";
      case MOp::MovI: return "mov";
      case MOp::MovR: return "mov";
      case MOp::Cmp: return "cmp";
      case MOp::CmpI: return "cmp";
      case MOp::Tst: return "tst";
      case MOp::TstI: return "tst";
      case MOp::CmpSxtw: return "cmp.sxtw";
      case MOp::Cset: return "cset";
      case MOp::Csel: return "csel";
      case MOp::LdrB: return "ldrb";
      case MOp::LdrW: return "ldr.w";
      case MOp::LdrX: return "ldr.x";
      case MOp::LdrD: return "ldr.d";
      case MOp::LdrBr: return "ldrb.r";
      case MOp::LdrWr: return "ldr.wr";
      case MOp::LdrXr: return "ldr.xr";
      case MOp::LdrDr: return "ldr.dr";
      case MOp::StrB: return "strb";
      case MOp::StrW: return "str.w";
      case MOp::StrX: return "str.x";
      case MOp::StrD: return "str.d";
      case MOp::StrBr: return "strb.r";
      case MOp::StrWr: return "str.wr";
      case MOp::StrXr: return "str.xr";
      case MOp::StrDr: return "str.dr";
      case MOp::CmpMem: return "cmp.mem";
      case MOp::CmpMemI: return "cmp.memi";
      case MOp::TstMemI: return "tst.memi";
      case MOp::FAdd: return "fadd";
      case MOp::FSub: return "fsub";
      case MOp::FMul: return "fmul";
      case MOp::FDiv: return "fdiv";
      case MOp::FNeg: return "fneg";
      case MOp::FAbs: return "fabs";
      case MOp::FSqrt: return "fsqrt";
      case MOp::FCmp: return "fcmp";
      case MOp::FMovI: return "fmov";
      case MOp::FMovRR: return "fmov";
      case MOp::Scvtf: return "scvtf";
      case MOp::Fcvtzs: return "fcvtzs";
      case MOp::Fjcvtzs: return "fjcvtzs";
      case MOp::B: return "b";
      case MOp::Bcond: return "b.cond";
      case MOp::Ret: return "ret";
      case MOp::CallRt: return "bl";
      case MOp::Msr: return "msr";
      case MOp::Mrs: return "mrs";
      case MOp::DeoptExit: return "deopt.exit";
      case MOp::JsLdrSmiI: return "jsldrsmi";
      case MOp::JsLdurSmiI: return "jsldursmi";
      case MOp::JsLdrSmiR: return "jsldrsmi.r";
      case MOp::JsLdrSmiRS: return "jsldrsmi.rs";
      case MOp::JsLdurSmiR: return "jsldursmi.r";
      case MOp::JsLdrSmiX: return "jsldrsmi.x";
      case MOp::JsChkMap: return "jschkmap";
    }
    return "?";
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
      case Cond::Ge: return "ge";
      case Cond::Lo: return "lo";
      case Cond::Ls: return "ls";
      case Cond::Hi: return "hi";
      case Cond::Hs: return "hs";
      case Cond::Vs: return "vs";
      case Cond::Vc: return "vc";
      case Cond::Mi: return "mi";
      case Cond::Pl: return "pl";
      case Cond::Al: return "al";
    }
    return "?";
}

const char *
runtimeFnName(RuntimeFn fn)
{
    switch (fn) {
      case RuntimeFn::CallFunction: return "rt.call";
      case RuntimeFn::GenericGetNamed: return "rt.getnamed";
      case RuntimeFn::GenericSetNamed: return "rt.setnamed";
      case RuntimeFn::GenericGetElement: return "rt.getelem";
      case RuntimeFn::GenericSetElement: return "rt.setelem";
      case RuntimeFn::GenericAdd: return "rt.add";
      case RuntimeFn::GenericCompare: return "rt.cmp";
      case RuntimeFn::StringConcat: return "rt.strcat";
      case RuntimeFn::StringEqual: return "rt.streq";
      case RuntimeFn::BoxFloat64: return "rt.boxf64";
      case RuntimeFn::Float64Mod: return "rt.fmod";
      case RuntimeFn::CreateArrayRt: return "rt.newarray";
      case RuntimeFn::CreateObjectRt: return "rt.newobject";
      case RuntimeFn::GrowArrayStore: return "rt.growstore";
      case RuntimeFn::TypeOfRt: return "rt.typeof";
      case RuntimeFn::ToBoolean: return "rt.tobool";
      case RuntimeFn::ToNumberRt: return "rt.tonumber";
      case RuntimeFn::StoreGlobalRt: return "rt.staglobal";
    }
    return "?";
}

} // namespace vspec
