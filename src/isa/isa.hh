/**
 * @file
 * The vspec virtual machine ISA. One executable instruction set serves
 * both backend flavours: the "arm64-like" backend emits pure RISC
 * sequences (separate loads, register-register compares), while the
 * "x64-like" backend may additionally use the CISC-ish memory-operand
 * compare/test forms. This mirrors the paper's observation that the
 * same checks take more instructions on ARM64 than on X64.
 *
 * The jsldr(u)smi family implements the paper's §V ISA extension: a
 * load that performs the Not-a-SMI check and the untagging shift in the
 * load unit, signalling a failed check branchlessly through the special
 * registers REG_PC / REG_RE and a commit-phase bailout exception whose
 * handler address is REG_BA.
 */

#ifndef VSPEC_ISA_ISA_HH
#define VSPEC_ISA_ISA_HH

#include <string>

#include "support/common.hh"

namespace vspec
{

/** Which backend produced the code (affects emission patterns only). */
enum class IsaFlavour : u8
{
    X64Like,
    Arm64Like,
};

const char *isaFlavourName(IsaFlavour f);

/** General-purpose registers. x28 doubles as the stack pointer. */
constexpr int kNumGprs = 29;
constexpr u8 kSpReg = 28;
/** Floating-point registers d0..d15. */
constexpr int kNumFprs = 16;

/** Pseudo base register: absolute addressing (x64-flavour loads). */
constexpr u8 kAbsBase = 0xfe;

/** Scratch registers reserved by the code generator. */
constexpr u8 kScratch0 = 16;
constexpr u8 kScratch1 = 17;
constexpr u8 kSpillScratch0 = 26;
constexpr u8 kSpillScratch1 = 27;
constexpr u8 kFpScratch0 = 14;
constexpr u8 kFpScratch1 = 15;

/** Special registers of the SMI-load extension. */
enum class SpecialReg : u8
{
    REG_BA = 0,  //!< bailout handler address
    REG_PC = 1,  //!< pc of the failed SMI load
    REG_RE = 2,  //!< deoptimization reason code (0 = none pending)
};

enum class MOp : u8
{
    Nop,

    // Register-register data processing (32-bit views unless noted).
    Add, Sub, Mul, SDiv, And, Orr, Eor, Lsl, Lsr, Asr,
    // Flag-setting variants (NZCV, V = signed overflow).
    Adds, Subs,
    // 64-bit full multiply of 32-bit sources (overflow detection).
    Smull,

    // Register-immediate forms.
    AddI, SubI, AndI, OrrI, EorI, LslI, LsrI, AsrI,
    AddsI, SubsI,
    MovI,   //!< rd = imm64
    MovR,   //!< rd = rm

    // Flag-setting comparisons.
    Cmp,     //!< flags(rn - rm)
    CmpI,    //!< flags(rn - imm)
    Tst,     //!< flags(rn & rm)
    TstI,    //!< flags(rn & imm)
    CmpSxtw, //!< flags(rn64 - sext32(rm)); ARM64 mul-overflow idiom

    // Conditional select: rd = cond ? 1 : 0 (cset).
    Cset,
    // Conditional select: rd = cond ? rn : rm.
    Csel,

    // Loads/stores. Address = rn + imm, or rn + (rm << scale).
    LdrB, LdrW, LdrX, LdrD,
    LdrBr, LdrWr, LdrXr, LdrDr,
    StrB, StrW, StrX, StrD,
    StrBr, StrWr, StrXr, StrDr,

    // x64-only memory-operand flag setters.
    CmpMem,   //!< flags(rd - mem32[rn + imm])
    CmpMemI,  //!< flags(mem32[rn + imm] - imm2) ; imm2 packed in `target`
    TstMemI,  //!< flags(mem32[rn + imm] & imm2)

    // Floating point (f64).
    FAdd, FSub, FMul, FDiv, FNeg, FAbs, FSqrt,
    FCmp,
    FMovI,    //!< fd = fimm
    FMovRR,   //!< fd = fm
    Scvtf,    //!< fd = (double)rn
    Fcvtzs,   //!< rd = trunc(fm) (saturating)
    Fjcvtzs,  //!< rd = ECMAScript ToInt32(fm) — the ARMv8.3-A JS
              //!< conversion the paper's related work discusses

    // Control flow. `target` = instruction index.
    B,
    Bcond,    //!< conditional; may be a deoptimization branch
    Ret,

    // Runtime call: `target` = RuntimeFn id; args/results in x0..x7/d0.
    CallRt,

    // Special register access (SMI extension prologue).
    Msr,      //!< special(imm) = rn
    Mrs,      //!< rd = special(imm)

    // Deopt exit marker: the "deoptimization region" at the end of a
    // compiled function. Executing it initiates bailout `imm`.
    DeoptExit,

    // ---- §V SMI-load extension -------------------------------------
    // rd = mem32[addr] >> 1 after an implicit Not-a-SMI check on the
    // loaded value; on failure REG_PC/REG_RE are written instead and a
    // bailout exception is raised at commit.
    JsLdrSmiI,    //!< addr = rn + (imm << 2)   (scaled immediate)
    JsLdurSmiI,   //!< addr = rn + imm          (unscaled immediate)
    JsLdrSmiR,    //!< addr = rn + rm           (register)
    JsLdrSmiRS,   //!< addr = rn + (rm << 2)    (register scaled)
    JsLdurSmiR,   //!< addr = rn + rm, no write-back, unscaled variant
    JsLdrSmiX,    //!< addr = rn + (rm << scale), generic scale

    // ---- §VII future-work extension: fused map check ----------------
    // flags = (mem32[rn - 1] == imm) ? EQ : NE, in one instruction —
    // the map-word load and compare of a WrongMap check fused the same
    // way jsldrsmi fuses the SMI check (the paper suggests "similar
    // optimizations are possible for map and boundary checks").
    JsChkMap,
};

const char *mopName(MOp op);

/** Condition codes (ARM64 naming). */
enum class Cond : u8
{
    Eq, Ne,
    Lt, Le, Gt, Ge,          //!< signed
    Lo, Ls, Hi, Hs,          //!< unsigned
    Vs, Vc,                  //!< overflow set / clear
    Mi, Pl,
    Al,
};

const char *condName(Cond c);

/** Roles an instruction can play inside a deoptimization check. */
enum class CheckRole : u8
{
    None,       //!< regular main-line instruction
    Condition,  //!< computes (part of) the check condition
    Branch,     //!< the conditional deopt branch itself
    Fused,      //!< jsldrsmi: load+check+untag in one instruction
};

constexpr u16 kNoCheck = 0xffff;

/**
 * One machine instruction. Fixed-width record; fields are interpreted
 * per-opcode (see the simulator). Check metadata ties instructions back
 * to the deoptimization check they implement — the ground truth that
 * the paper's PC-sampling window heuristic tries to approximate.
 */
struct MInst
{
    MOp op = MOp::Nop;
    Cond cond = Cond::Al;
    u8 rd = 0;
    u8 rn = 0;
    u8 rm = 0;
    u8 scale = 0;
    i64 imm = 0;
    double fimm = 0.0;
    u32 target = 0;          //!< branch target / runtime fn / imm2

    u16 checkId = kNoCheck;  //!< which check this instruction belongs to
    CheckRole checkRole = CheckRole::None;
    bool isDeoptBranch = false;
    u16 deoptIndex = 0;      //!< DeoptExit index for deopt branches/loads
    u32 bcOff = 0;           //!< originating bytecode offset (vprof)

    bool isBranch() const
    {
        return op == MOp::B || op == MOp::Bcond || op == MOp::Ret
               || op == MOp::CallRt;
    }
    bool isCondBranch() const { return op == MOp::Bcond; }

    bool
    isLoad() const
    {
        switch (op) {
          case MOp::LdrB: case MOp::LdrW: case MOp::LdrX: case MOp::LdrD:
          case MOp::LdrBr: case MOp::LdrWr: case MOp::LdrXr: case MOp::LdrDr:
          case MOp::CmpMem: case MOp::CmpMemI: case MOp::TstMemI:
          case MOp::JsLdrSmiI: case MOp::JsLdurSmiI: case MOp::JsLdrSmiR:
          case MOp::JsLdrSmiRS: case MOp::JsLdurSmiR: case MOp::JsLdrSmiX:
          case MOp::JsChkMap:
            return true;
          default:
            return false;
        }
    }

    bool
    isStore() const
    {
        switch (op) {
          case MOp::StrB: case MOp::StrW: case MOp::StrX: case MOp::StrD:
          case MOp::StrBr: case MOp::StrWr: case MOp::StrXr: case MOp::StrDr:
            return true;
          default:
            return false;
        }
    }

    bool
    isSmiExtensionLoad() const
    {
        switch (op) {
          case MOp::JsLdrSmiI: case MOp::JsLdurSmiI: case MOp::JsLdrSmiR:
          case MOp::JsLdrSmiRS: case MOp::JsLdurSmiR: case MOp::JsLdrSmiX:
            return true;
          default:
            return false;
        }
    }

    bool
    isFloat() const
    {
        switch (op) {
          case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
          case MOp::FNeg: case MOp::FAbs: case MOp::FSqrt: case MOp::FCmp:
          case MOp::FMovI: case MOp::FMovRR: case MOp::Scvtf:
          case MOp::LdrD: case MOp::LdrDr: case MOp::StrD: case MOp::StrDr:
            return true;
          default:
            return false;
        }
    }
};

/** Runtime functions callable from optimized code via CallRt. */
enum class RuntimeFn : u32
{
    CallFunction,       //!< x0=callee fn cell bits, x1=this, x2=argStart(regs), x3=argc
    GenericGetNamed,    //!< x0=receiver, x1=name id -> x0
    GenericSetNamed,    //!< x0=receiver, x1=name id, x2=value
    GenericGetElement,  //!< x0=receiver, x1=key -> x0
    GenericSetElement,  //!< x0=receiver, x1=key, x2=value
    GenericAdd,         //!< x0, x1 -> x0 (full JS '+' semantics)
    GenericCompare,     //!< x0, x1, x2=op code -> x0 (boolean)
    StringConcat,       //!< x0, x1 strings -> x0
    StringEqual,        //!< x0, x1 -> x0 boolean
    BoxFloat64,         //!< d0 -> x0 (new HeapNumber)
    Float64Mod,         //!< d0, d1 -> d0 (fmod)
    CreateArrayRt,      //!< x1=capacity -> x0
    CreateObjectRt,     //!< -> x0
    GrowArrayStore,     //!< x0=array, x1=index(machine int), x2=value
    TypeOfRt,           //!< x0 -> x0 (interned string)
    ToBoolean,          //!< x0 -> x0 (0/1 machine int)
    ToNumberRt,         //!< x0 -> x0 (tagged number)
    StoreGlobalRt,      //!< x0=value, x1=cell index (machine int)
};

const char *runtimeFnName(RuntimeFn fn);

} // namespace vspec

#endif // VSPEC_ISA_ISA_HH
