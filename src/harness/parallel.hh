/**
 * @file
 * vpar: cell-sharded parallel experiment runner + persistent result
 * cache.
 *
 * Every figure bench decomposes into independent cells (workload x
 * RunConfig x repeat); each cell owns its Engine, so cells execute
 * concurrently on a bounded worker pool (support/sched) without
 * sharing any mutable engine state. Determinism contract: cells are
 * enumerated up front, results land in a slot indexed by cell, and all
 * output is rendered sequentially from those slots — tables, JSON
 * dumps and trace files are byte-identical to a `--jobs=1` run no
 * matter how the pool schedules the work.
 *
 * The persistent cache keeps the two expensive all-checks-in-place
 * artifacts — reference checksums and §III-B.2 safe-removal sets —
 * across process invocations, keyed by workload source hash +
 * RunConfig fingerprint + a schema version (bump kCacheSchemaVersion
 * whenever modeled semantics change). Location: $VSPEC_CACHE_DIR, else
 * $XDG_CACHE_HOME/vspec, else $HOME/.cache/vspec; VSPEC_CACHE=0
 * disables. Hits/misses are tracked in the process-wide harness
 * counter registry (vtrace counters for code that runs outside any
 * engine).
 */

#ifndef VSPEC_HARNESS_PARALLEL_HH
#define VSPEC_HARNESS_PARALLEL_HH

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "support/sched.hh"

namespace vspec
{
namespace par
{

/** Bump when engine semantics change in a way that invalidates cached
 *  reference checksums / safe-removal sets. */
constexpr u32 kCacheSchemaVersion = 1;

/** FNV-1a 64-bit over arbitrary bytes — the cache's content hash. */
u64 fnv1a(const void *data, size_t len, u64 seed = 0xcbf29ce484222325ULL);
u64 fnv1aStr(const std::string &s, u64 seed = 0xcbf29ce484222325ULL);

/** Fold an integer into a running FNV state. */
u64 fnv1aU64(u64 v, u64 seed);

/**
 * Fingerprint of every RunConfig field that can influence a run's
 * *results* (checksums, deopt behaviour) as opposed to its timing:
 * isa, extensions, optimization, branch removal, seed, jitter, size,
 * iterations. Used to key safe-removal-set cache entries.
 */
u64 runConfigFingerprint(const RunConfig &rc);

/** Cache key for a reference checksum of (workload, size, iters). */
u64 referenceCacheKey(const Workload &w, u32 size, u32 iterations);

/** Cache key for a safe-removal set search. */
u64 safeSetCacheKey(const Workload &w, const RunConfig &base,
                    u32 probe_iterations);

/**
 * Thread-safe persistent key/value cache: one small file per entry
 * under the cache directory, written atomically (temp file + rename)
 * so concurrent bench processes cannot observe torn entries. An
 * in-memory map serves repeated lookups without touching the
 * filesystem again.
 */
class PersistentCache
{
  public:
    /** The process-wide cache, configured from the environment once. */
    static PersistentCache &instance();

    /** True when a usable cache directory exists and VSPEC_CACHE != 0.
     */
    bool enabled() const;
    const std::string &dir() const;

    /** Lookup `<kind>-<key>`; fills @p value on hit. */
    bool get(const std::string &kind, u64 key, std::string &value);
    /** Store `<kind>-<key>` (memory + disk). */
    void put(const std::string &kind, u64 key, const std::string &value);

    /** Drop every entry (memory + disk) — `clear the cache`. */
    void clear();

    /** Bench `--no-cache`: stop reading/writing the disk layer (the
     *  in-process memo stays; it is deterministic either way). */
    void setDiskEnabled(bool enabled);

    /** Test hook: build a cache rooted at an explicit directory
     *  (empty = disabled). */
    explicit PersistentCache(const std::string &directory);

  private:
    std::string entryPath(const std::string &kind, u64 key) const;

    std::string root;  //!< empty = disabled
    std::atomic<bool> diskEnabled{true};
    std::mutex mu;
    std::map<std::string, std::string> memory;
};

// ---------------------------------------------------------------------
// Harness counters: vtrace-style counters for code that runs outside
// any engine (the runner and the caches). Thread-safe.
// ---------------------------------------------------------------------

enum class HarnessCounter : u8
{
    CellsRun,           //!< cells executed by the parallel runner
    RefCacheHits,       //!< reference checksums served from the cache
    RefCacheMisses,
    SafeSetCacheHits,   //!< §III-B.2 sets served from the cache
    SafeSetCacheMisses,
    /** Task exceptions the first-error rethrow policy discarded in
     *  mapCells rounds (sched satellite: multi-failure rounds must
     *  never be invisible). */
    TaskErrorsSuppressed,
    NumCounters,
};

constexpr u32 kNumHarnessCounters =
    static_cast<u32>(HarnessCounter::NumCounters);

const char *harnessCounterName(HarnessCounter c);

void bumpHarnessCounter(HarnessCounter c, u64 n = 1);
u64 harnessCounter(HarnessCounter c);
void resetHarnessCounters();

/** Flat JSON of the harness counters (micro_host's BENCH_host.json). */
std::string harnessCountersJson();

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/**
 * Execute fn(0..n-1) on the pool and return results indexed by cell.
 * This is *the* vpar primitive: a bench enumerates its cells, maps
 * them, then renders output sequentially from the ordered results.
 */
template <typename R, typename Fn>
std::vector<R>
mapCells(u32 jobs, size_t n, Fn fn)
{
    std::vector<R> results(n);
    u64 suppressed = 0;
    try {
        sched::parallelFor(jobs, n,
                           [&](size_t i) { results[i] = fn(i); },
                           &suppressed);
    } catch (...) {
        // parallelFor rethrows only the lowest-index failure; account
        // the discarded ones so multi-failure rounds stay visible.
        if (suppressed != 0)
            bumpHarnessCounter(HarnessCounter::TaskErrorsSuppressed,
                               suppressed);
        throw;
    }
    bumpHarnessCounter(HarnessCounter::CellsRun, n);
    return results;
}

/** Convenience: one cell per workload. */
template <typename R, typename Fn>
std::vector<R>
mapWorkloads(u32 jobs, const std::vector<const Workload *> &ws, Fn fn)
{
    return mapCells<R>(jobs, ws.size(),
                       [&](size_t i) { return fn(*ws[i]); });
}

/** printf into a std::string (ordered per-cell output buffers). */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace par
} // namespace vspec

#endif // VSPEC_HARNESS_PARALLEL_HH
