#include "harness/bench_gate.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vspec
{

namespace
{

/** Tolerance below zero marks a key as informational. */
constexpr double kInformational = -1.0;

std::string
readFileOr(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ok = true;
    return ss.str();
}

const JsonValue *
lookupPath(const JsonValue &doc, const std::string &path)
{
    const JsonValue *v = &doc;
    size_t start = 0;
    while (start < path.size()) {
        size_t dot = path.find('.', start);
        if (dot == std::string::npos)
            dot = path.size();
        std::string key = path.substr(start, dot - start);
        v = v->get(key);
        if (!v)
            return nullptr;
        start = dot + 1;
    }
    return v;
}

double
toleranceFor(const GateEntry &entry, const std::string &key)
{
    auto it = entry.tolerances.find(key);
    if (it != entry.tolerances.end())
        return it->second;
    return entry.defaultTolerance;
}

void
compareNode(const GateEntry &entry, const std::string &key,
            const JsonValue &base, const JsonValue *cur,
            GateOutcome &outcome, double scale)
{
    if (!cur) {
        // Missing keys are only violations when listed as required;
        // baselines may legitimately carry more detail than a given
        // emitter version produces.
        outcome.notes.push_back(entry.file + ": key '" + key
                                + "' missing from current output");
        return;
    }
    switch (base.kind) {
      case JsonValue::Kind::Object:
        for (const auto &[k, child] : base.object) {
            std::string sub = key.empty() ? k : key + "." + k;
            compareNode(entry, sub, child, cur->get(k), outcome, scale);
        }
        return;
      case JsonValue::Kind::Array:
        for (size_t i = 0; i < base.array.size(); i++) {
            std::string sub = key + "[" + std::to_string(i) + "]";
            const JsonValue *c = cur->isArray() && i < cur->array.size()
                ? &cur->array[i] : nullptr;
            compareNode(entry, sub, base.array[i], c, outcome, scale);
        }
        return;
      case JsonValue::Kind::Number:
        break;
      default:
        return;  // strings/bools/nulls are not gated
    }

    if (!cur->isNumber()) {
        outcome.passed = false;
        outcome.violations.push_back(
            {entry.file, key, base.number, 0.0, 0.0,
             "baseline is numeric but current output is not"});
        return;
    }

    outcome.keysCompared++;
    double b = base.number, c = cur->number;
    double denom = std::max(std::fabs(b), 1e-12);
    double rel = std::fabs(c - b) / denom;
    double tol = toleranceFor(entry, key);
    bool informational = entry.informational || tol < 0.0;
    double eff = informational ? 0.0 : tol * scale;

    if (!informational && rel > eff) {
        outcome.passed = false;
        outcome.violations.push_back({entry.file, key, b, c, eff, ""});
    } else if (rel > (informational ? 0.0 : eff)) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s: %s deviates %.2f%% (%.6g -> %.6g, "
                      "informational)",
                      entry.file.c_str(), key.c_str(), 100.0 * rel, b,
                      c);
        outcome.notes.push_back(buf);
    }
}

} // namespace

bool
parseGateManifest(const JsonValue &doc, std::vector<GateEntry> &out,
                  std::string &error)
{
    const JsonValue *schema = doc.get("schema");
    if (!schema || schema->string != "vspec-bench-gate-v1") {
        error = "gate.json: missing or unknown schema";
        return false;
    }
    const JsonValue *entries = doc.get("entries");
    if (!entries || !entries->isArray()) {
        error = "gate.json: missing entries array";
        return false;
    }
    for (const JsonValue &e : entries->array) {
        GateEntry ge;
        const JsonValue *file = e.get("file");
        if (!file || !file->isString()) {
            error = "gate.json: entry without file";
            return false;
        }
        ge.file = file->string;
        if (const JsonValue *inf = e.get("informational"))
            ge.informational = inf->boolean;
        if (const JsonValue *tol = e.get("default_tolerance")) {
            ge.defaultTolerance = tol->kind == JsonValue::Kind::Null
                ? kInformational : tol->number;
        }
        if (const JsonValue *tols = e.get("tolerances")) {
            for (const auto &[k, v] : tols->object)
                ge.tolerances[k] = v.kind == JsonValue::Kind::Null
                    ? kInformational : v.number;
        }
        if (const JsonValue *req = e.get("required_keys")) {
            for (const JsonValue &k : req->array)
                ge.requiredKeys.push_back(k.string);
        }
        out.push_back(std::move(ge));
    }
    return true;
}

void
compareGateEntry(const GateEntry &entry, const JsonValue &baseline,
                 const JsonValue &current, GateOutcome &outcome,
                 double scale)
{
    for (const std::string &key : entry.requiredKeys) {
        if (!lookupPath(current, key)) {
            outcome.passed = false;
            outcome.violations.push_back(
                {entry.file, key, 0.0, 0.0, 0.0,
                 "required key missing from current output"});
        }
    }
    compareNode(entry, "", baseline, &current, outcome, scale);
}

GateOutcome
runBenchGate(const std::string &baselinesDir,
             const std::string &currentDir, double scale)
{
    GateOutcome outcome;
    bool ok = false;
    std::string manifest_text =
        readFileOr(baselinesDir + "/gate.json", ok);
    if (!ok) {
        outcome.passed = false;
        outcome.violations.push_back(
            {"gate.json", "", 0.0, 0.0, 0.0,
             "cannot read " + baselinesDir + "/gate.json"});
        return outcome;
    }
    JsonValue manifest;
    std::string error;
    if (!parseJson(manifest_text, manifest, error)) {
        outcome.passed = false;
        outcome.violations.push_back(
            {"gate.json", "", 0.0, 0.0, 0.0, "invalid JSON: " + error});
        return outcome;
    }
    std::vector<GateEntry> entries;
    if (!parseGateManifest(manifest, entries, error)) {
        outcome.passed = false;
        outcome.violations.push_back(
            {"gate.json", "", 0.0, 0.0, 0.0, error});
        return outcome;
    }

    for (const GateEntry &entry : entries) {
        std::string base_text =
            readFileOr(baselinesDir + "/" + entry.file, ok);
        if (!ok) {
            outcome.passed = false;
            outcome.violations.push_back(
                {entry.file, "", 0.0, 0.0, 0.0,
                 "cannot read baseline " + baselinesDir + "/"
                     + entry.file});
            continue;
        }
        std::string cur_text =
            readFileOr(currentDir + "/" + entry.file, ok);
        if (!ok) {
            if (entry.informational) {
                outcome.notes.push_back(entry.file
                                        + ": no current output "
                                          "(informational, skipped)");
            } else {
                outcome.passed = false;
                outcome.violations.push_back(
                    {entry.file, "", 0.0, 0.0, 0.0,
                     "cannot read current " + currentDir + "/"
                         + entry.file});
            }
            continue;
        }
        JsonValue base, cur;
        if (!parseJson(base_text, base, error)) {
            outcome.passed = false;
            outcome.violations.push_back(
                {entry.file, "", 0.0, 0.0, 0.0,
                 "baseline invalid JSON: " + error});
            continue;
        }
        if (!parseJson(cur_text, cur, error)) {
            outcome.passed = false;
            outcome.violations.push_back(
                {entry.file, "", 0.0, 0.0, 0.0,
                 "current invalid JSON: " + error});
            continue;
        }
        compareGateEntry(entry, base, cur, outcome, scale);
    }
    return outcome;
}

std::string
gateReport(const GateOutcome &outcome)
{
    std::ostringstream os;
    os << "bench gate: " << (outcome.passed ? "PASS" : "FAIL") << " ("
       << outcome.keysCompared << " keys compared, "
       << outcome.violations.size() << " violations)\n";
    for (const GateViolation &v : outcome.violations) {
        if (!v.message.empty()) {
            os << "  FAIL " << v.file
               << (v.key.empty() ? "" : " " + v.key) << ": "
               << v.message << "\n";
            continue;
        }
        double denom = std::max(std::fabs(v.baseline), 1e-12);
        double rel = 100.0 * std::fabs(v.current - v.baseline) / denom;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "  FAIL %s %s: %.6g -> %.6g (%.2f%% > %.2f%%)\n",
                      v.file.c_str(), v.key.c_str(), v.baseline,
                      v.current, rel, 100.0 * v.tolerance);
        os << buf;
    }
    for (const std::string &n : outcome.notes)
        os << "  note " << n << "\n";
    return os.str();
}

} // namespace vspec
