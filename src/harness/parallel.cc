#include "harness/parallel.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "support/logging.hh"

namespace vspec
{
namespace par
{

// ---------------------------------------------------------------------
// Hashing / cache keys
// ---------------------------------------------------------------------

u64
fnv1a(const void *data, size_t len, u64 seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    u64 h = seed;
    for (size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

u64
fnv1aStr(const std::string &s, u64 seed)
{
    return fnv1a(s.data(), s.size(), seed);
}

u64
fnv1aU64(u64 v, u64 seed)
{
    return fnv1a(&v, sizeof(v), seed);
}

u64
runConfigFingerprint(const RunConfig &rc)
{
    u64 h = fnv1aU64(kCacheSchemaVersion, 0xcbf29ce484222325ULL);
    h = fnv1aU64(static_cast<u64>(rc.isa), h);
    h = fnv1aU64(rc.size, h);
    h = fnv1aU64(rc.iterations, h);
    u64 flags = 0;
    flags |= rc.removeBranchesOnly ? 1u : 0u;
    flags |= rc.smiExtension ? 2u : 0u;
    flags |= rc.mapCheckExtension ? 4u : 0u;
    flags |= rc.enableOptimization ? 8u : 0u;
    h = fnv1aU64(flags, h);
    for (bool b : rc.removeChecks)
        h = fnv1aU64(b ? 1 : 0, h);
    h = fnv1aU64(rc.seed, h);
    h = fnv1aU64(rc.jitter, h);
    h = fnv1aU64(rc.maxFuelCycles, h);
    return h;
}

u64
referenceCacheKey(const Workload &w, u32 size, u32 iterations)
{
    // Content-keyed: the *instantiated* source, so editing a workload
    // or changing its size invalidates the entry automatically.
    u64 h = fnv1aStr(instantiate(w, size),
                     fnv1aU64(kCacheSchemaVersion,
                              0xcbf29ce484222325ULL));
    h = fnv1aU64(size, h);
    h = fnv1aU64(iterations, h);
    return h;
}

u64
safeSetCacheKey(const Workload &w, const RunConfig &base,
                u32 probe_iterations)
{
    u32 size = base.size != 0 ? base.size : w.defaultSize;
    u64 h = fnv1aStr(instantiate(w, size), runConfigFingerprint(base));
    h = fnv1aU64(size, h);
    h = fnv1aU64(probe_iterations, h);
    return h;
}

// ---------------------------------------------------------------------
// PersistentCache
// ---------------------------------------------------------------------

namespace
{

std::string
resolveCacheDir()
{
    if (const char *env = std::getenv("VSPEC_CACHE")) {
        if (env[0] == '0' && env[1] == '\0')
            return "";
    }
    std::string dir;
    if (const char *env = std::getenv("VSPEC_CACHE_DIR")) {
        if (env[0] != '\0')
            dir = env;
    }
    if (dir.empty()) {
        if (const char *xdg = std::getenv("XDG_CACHE_HOME")) {
            if (xdg[0] != '\0')
                dir = std::string(xdg) + "/vspec";
        }
    }
    if (dir.empty()) {
        if (const char *home = std::getenv("HOME")) {
            if (home[0] != '\0')
                dir = std::string(home) + "/.cache/vspec";
        }
    }
    return dir;
}

} // namespace

PersistentCache::PersistentCache(const std::string &directory)
    : root(directory)
{
    if (root.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        vlog(LogLevel::Warn, "vpar",
             "cannot create cache dir '" + root + "' (" + ec.message()
                 + "); persistent caching disabled");
        root.clear();
    }
}

PersistentCache &
PersistentCache::instance()
{
    static PersistentCache cache(resolveCacheDir());
    return cache;
}

bool
PersistentCache::enabled() const
{
    return !root.empty() && diskEnabled.load(std::memory_order_relaxed);
}

void
PersistentCache::setDiskEnabled(bool enabled)
{
    diskEnabled.store(enabled, std::memory_order_relaxed);
}

const std::string &
PersistentCache::dir() const
{
    return root;
}

std::string
PersistentCache::entryPath(const std::string &kind, u64 key) const
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return root + "/" + kind + "-" + hex + ".txt";
}

bool
PersistentCache::get(const std::string &kind, u64 key, std::string &value)
{
    std::string mem_key = kind + "#" + std::to_string(key);
    {
        std::unique_lock<std::mutex> lock(mu);
        auto it = memory.find(mem_key);
        if (it != memory.end()) {
            value = it->second;
            return true;
        }
    }
    if (!enabled())
        return false;
    std::ifstream in(entryPath(kind, key), std::ios::binary);
    if (!in)
        return false;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return false;
    {
        std::unique_lock<std::mutex> lock(mu);
        memory.emplace(mem_key, data);
    }
    value = std::move(data);
    return true;
}

void
PersistentCache::put(const std::string &kind, u64 key,
                     const std::string &value)
{
    std::string mem_key = kind + "#" + std::to_string(key);
    {
        std::unique_lock<std::mutex> lock(mu);
        memory[mem_key] = value;
    }
    if (!enabled())
        return;
    // Atomic publish: a unique temp file renamed into place, so a
    // concurrent reader (or a second bench process) never sees a torn
    // entry. Failures only cost future cache misses — log and move on.
    static std::atomic<u64> temp_seq{0};
    std::string path = entryPath(kind, key);
    std::string tmp = path + ".tmp" + std::to_string(::getpid()) + "."
                      + std::to_string(
                            temp_seq.fetch_add(1,
                                               std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            vlog(LogLevel::Warn, "vpar",
                 "cannot write cache entry " + tmp);
            return;
        }
        out << value;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        vlog(LogLevel::Warn, "vpar",
             "cannot publish cache entry " + path + ": " + ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

void
PersistentCache::clear()
{
    std::unique_lock<std::mutex> lock(mu);
    memory.clear();
    if (root.empty())
        return;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(root, ec)) {
        if (entry.path().extension() == ".txt")
            std::filesystem::remove(entry.path(), ec);
    }
}

// ---------------------------------------------------------------------
// Harness counters
// ---------------------------------------------------------------------

namespace
{

std::atomic<u64> g_harness_counters[kNumHarnessCounters];

} // namespace

const char *
harnessCounterName(HarnessCounter c)
{
    switch (c) {
      case HarnessCounter::CellsRun: return "cells_run";
      case HarnessCounter::RefCacheHits: return "ref_cache_hits";
      case HarnessCounter::RefCacheMisses: return "ref_cache_misses";
      case HarnessCounter::SafeSetCacheHits: return "safe_set_cache_hits";
      case HarnessCounter::SafeSetCacheMisses:
        return "safe_set_cache_misses";
      case HarnessCounter::TaskErrorsSuppressed:
        return "task_errors_suppressed";
      case HarnessCounter::NumCounters: break;
    }
    return "?";
}

void
bumpHarnessCounter(HarnessCounter c, u64 n)
{
    g_harness_counters[static_cast<u32>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

u64
harnessCounter(HarnessCounter c)
{
    return g_harness_counters[static_cast<u32>(c)].load(
        std::memory_order_relaxed);
}

void
resetHarnessCounters()
{
    for (auto &c : g_harness_counters)
        c.store(0, std::memory_order_relaxed);
}

std::string
harnessCountersJson()
{
    std::string out = "{";
    for (u32 i = 0; i < kNumHarnessCounters; i++) {
        if (i != 0)
            out += ",";
        out += "\"";
        out += harnessCounterName(static_cast<HarnessCounter>(i));
        out += "\":"
               + std::to_string(
                     harnessCounter(static_cast<HarnessCounter>(i)));
    }
    out += "}";
    return out;
}

// ---------------------------------------------------------------------
// strprintf
// ---------------------------------------------------------------------

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<size_t>(n));
    }
    va_end(args);
    return out;
}

} // namespace par
} // namespace vspec
