/**
 * @file
 * Experiment harness shared by every bench binary: runs a workload for
 * N iterations under a RunConfig (ISA flavour, CPU model, check
 * removal set, branch-only removal, SMI extension, sampler), collects
 * per-iteration cycle counts and deoptimization events, aggregates
 * sampler attributions, validates the final checksum against a
 * reference run, and implements the paper's §III-B.2 safe-removal
 * search (leave in the check types a benchmark needs for correctness).
 */

#ifndef VSPEC_HARNESS_EXPERIMENT_HH
#define VSPEC_HARNESS_EXPERIMENT_HH

#include <array>
#include <optional>

#include "profiler/attribution.hh"
#include "profiler/profile.hh"
#include "runtime/engine.hh"
#include "workloads/suite.hh"

namespace vspec
{

struct RunConfig
{
    IsaFlavour isa = IsaFlavour::Arm64Like;
    std::optional<CpuConfig> cpu;  //!< default: matches the ISA flavour
    u32 iterations = 120;
    u32 size = 0;                  //!< 0 = workload default

    std::array<bool, kNumGroups> removeChecks{};
    bool removeBranchesOnly = false;
    bool smiExtension = false;
    bool mapCheckExtension = false;  //!< §VII ablation

    /** vproof static-elim: delete only checks the abstract interpreter
     *  proved redundant. Sound — results are bit-identical to baseline
     *  (unlike removeChecks, the unsound upper bound). */
    bool staticElim = false;
    bool samplerEnabled = true;
    bool enableOptimization = true;
    u64 samplerPeriod = 211;       //!< fine-grained: small workloads
    u64 seed = 42;

    /** vprof: calling-context profiling (implies the sampler). The
     *  outcome then carries a built Profile. Simulated cycles are
     *  bit-identical with this on or off. */
    bool profiling = false;

    /** vdcost: deopt episode tracking. The outcome then carries a
     *  DeoptCostSummary. Same bit-identity guarantee as profiling. */
    bool deoptCost = false;

    /** vverify level for the engine's compilation pipeline. */
    VerifyLevel verifyLevel = defaultVerifyLevel();

    /** vtrace config for the run's engine; defaults honour VSPEC_TRACE
     *  / VSPEC_TRACE_OUT. Dump files are suffixed with the workload
     *  name, so a whole-suite bench yields one pair per workload. */
    TraceConfig trace = TraceConfig::fromEnv();

    /**
     * Repeat index for multi-run experiments. Non-zero values perturb
     * measurement conditions (sampler phase, tier-up threshold, seed)
     * to model the run-to-run noise the paper attributes to JIT/GC
     * non-determinism — vspec itself is deterministic.
     */
    u32 jitter = 0;

    /** vguard fault injection for the run's engine; defaults honour
     *  VSPEC_FAULT. Reference-checksum runs always clear this. */
    FaultConfig faults = FaultConfig::fromEnv();

    /** vguard fuel budget in modeled cycles (0 = unlimited). */
    u64 maxFuelCycles = 0;

    /** vpar: simulator predecode fast path (bit-identical cycles; off
     *  only for A/B comparisons — honours VSPEC_PREDECODE=0). */
    bool predecode = defaultPredecodeEnabled();

    bool anyRemoval() const
    {
        for (bool b : removeChecks)
            if (b)
                return true;
        return false;
    }

    static RunConfig
    withAllChecksRemoved(RunConfig base)
    {
        base.removeChecks.fill(true);
        return base;
    }
};

struct RunOutcome
{
    bool completed = false;        //!< no crash/panic during execution
    bool valid = false;            //!< checksum matches the reference
    std::string checksum;
    std::string error;
    std::string errorKind;         //!< EngineError kind name, if one hit

    std::vector<Cycles> iterationCycles;
    std::vector<u32> deoptEventsPerIteration;
    u64 totalDeopts = 0;

    SimStats sim;                  //!< simulated-code statistics
    Cycles interpreterCycles = 0;
    Cycles totalCycles = 0;

    AttributionResult window;      //!< PC sampling, paper's heuristic
    AttributionResult truth;       //!< annotation ground truth

    /** vprof: built when RunConfig::profiling was set. */
    std::shared_ptr<Profile> profile;

    /** vdcost: filled when RunConfig::deoptCost was set. */
    DeoptCostSummary deoptCost;

    /** Static code metrics over compiled code objects. */
    double staticCheckFreqPer100 = 0.0;   //!< Fig. 1
    std::array<u64, kNumGroups> staticChecksPerGroup{};
    u64 staticChecks = 0;
    u64 staticInstructions = 0;
    u64 compilations = 0;

    /** vproof: ProveChecks classification totals per CheckGroup
     *  (summed over every compile) and the per-(function, line)
     *  audit rows. */
    std::array<u32, kNumGroups> provenPerGroup{};
    std::array<u32, kNumGroups> neededPerGroup{};
    std::array<u32, kNumGroups> unknownPerGroup{};
    u32 checksElided = 0;
    std::vector<CheckAuditEntry> checkAudit;

    /** vtrace counter snapshot at the end of the run (always filled;
     *  counters are active even with event categories disabled). */
    u64 traceTotalDeopts = 0;
    u64 traceCompilations = 0;
    u64 traceIcMegamorphic = 0;
    u64 traceGcCycles = 0;

    /** vregalloc counter snapshot (summed over every compile): the
     *  allocator's behaviour under this workload, exported so the
     *  bench gate can track spill pressure alongside cycles. */
    u64 regallocSpills = 0;
    u64 regallocSplits = 0;
    u64 regallocReloads = 0;
    u64 regallocSpillSlots = 0;
    u64 regallocCalleeSaved = 0;

    /** Mean cycles of the last third of iterations (steady state). */
    double steadyStateCycles() const;
    /** Mean cycles across all iterations ("total duration" metric). */
    double meanCycles() const;
};

/** Translate a RunConfig into the engine configuration it implies
 *  (exposed for benches that drive an Engine directly). */
EngineConfig engineConfigFor(const RunConfig &config);

/** Run @p w under @p config. The checksum is compared against
 *  @p reference when non-null (otherwise valid == completed). */
RunOutcome runWorkload(const Workload &w, const RunConfig &config,
                       const std::string *reference_checksum = nullptr);

/**
 * Reference checksum for a run of @p iterations: an all-checks-in-place
 * run of the same length (several workloads carry state across
 * iterations, so the reference must match the iteration count).
 * Cached per (workload, size, iterations).
 */
const std::string &referenceChecksum(const Workload &w, u32 size,
                                     u32 iterations);

/**
 * §III-B.2: the set of check groups that can be removed without
 * breaking the benchmark. Starts from all groups and drops the ones
 * whose removal corrupts the checksum.
 */
std::array<bool, kNumGroups> findSafeRemovalSet(const Workload &w,
                                                RunConfig base,
                                                u32 probe_iterations = 40);

/** Convenience: fraction of static check instructions left in place
 *  by a removal set, relative to the unmodified build. */
double leftoverCheckFraction(const Workload &w, const RunConfig &base,
                             const std::array<bool, kNumGroups> &removed);

} // namespace vspec

#endif // VSPEC_HARNESS_EXPERIMENT_HH
