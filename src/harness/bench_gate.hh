/**
 * @file
 * Bench regression gate (vprof): compares freshly emitted bench JSON
 * against checked-in baselines with per-key relative tolerances. The
 * gate is data-driven by a `gate.json` manifest in the baselines
 * directory:
 *
 *   {
 *     "schema": "vspec-bench-gate-v1",
 *     "entries": [
 *       { "file": "bench_cycles.json",
 *         "default_tolerance": 0.05,
 *         "tolerances": { "workloads.deltablue.cycles": 0.10 },
 *         "required_keys": ["schema"],
 *         "informational": false }
 *     ]
 *   }
 *
 * Every numeric leaf of the baseline document is compared against the
 * same key path in the current document; a relative deviation above
 * the key's tolerance is a violation, as is a missing required key.
 * Entries (or individual keys, via a negative tolerance) can be marked
 * informational: deviations are reported but never fail the gate —
 * used for host-dependent metrics like wall-clock throughput.
 */

#ifndef VSPEC_HARNESS_BENCH_GATE_HH
#define VSPEC_HARNESS_BENCH_GATE_HH

#include <map>
#include <string>
#include <vector>

#include "support/json.hh"

namespace vspec
{

/** One gate manifest entry (one file to compare). */
struct GateEntry
{
    std::string file;
    bool informational = false;
    double defaultTolerance = 0.05;
    std::map<std::string, double> tolerances;  //!< key path -> rel tol
    std::vector<std::string> requiredKeys;
};

struct GateViolation
{
    std::string file;
    std::string key;
    double baseline = 0.0;
    double current = 0.0;
    double tolerance = 0.0;
    std::string message;  //!< set for structural problems
};

struct GateOutcome
{
    bool passed = true;
    u64 keysCompared = 0;
    std::vector<GateViolation> violations;
    std::vector<std::string> notes;  //!< informational deviations etc.
};

/** Parse a gate.json manifest. Returns false + @p error on failure. */
bool parseGateManifest(const JsonValue &doc, std::vector<GateEntry> &out,
                       std::string &error);

/**
 * Compare one baseline/current document pair under @p entry's
 * tolerances (scaled by @p scale) and append to @p outcome.
 */
void compareGateEntry(const GateEntry &entry, const JsonValue &baseline,
                      const JsonValue &current, GateOutcome &outcome,
                      double scale = 1.0);

/**
 * Run the whole gate: read `<baselinesDir>/gate.json`, compare every
 * entry's baseline file against `<currentDir>/<file>`. @p scale
 * multiplies all tolerances (CI hosts with known jitter).
 */
GateOutcome runBenchGate(const std::string &baselinesDir,
                         const std::string &currentDir,
                         double scale = 1.0);

/** Human-readable gate report (one line per deviation). */
std::string gateReport(const GateOutcome &outcome);

} // namespace vspec

#endif // VSPEC_HARNESS_BENCH_GATE_HH
