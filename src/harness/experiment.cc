#include "harness/experiment.hh"

#include <map>
#include <mutex>

#include "harness/parallel.hh"

namespace vspec
{

double
RunOutcome::steadyStateCycles() const
{
    if (iterationCycles.empty())
        return 0.0;
    size_t start = iterationCycles.size() * 2 / 3;
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = start; i < iterationCycles.size(); i++) {
        sum += static_cast<double>(iterationCycles[i]);
        n++;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double
RunOutcome::meanCycles() const
{
    if (iterationCycles.empty())
        return 0.0;
    double sum = 0.0;
    for (Cycles c : iterationCycles)
        sum += static_cast<double>(c);
    return sum / static_cast<double>(iterationCycles.size());
}

EngineConfig
engineConfigFor(const RunConfig &rc)
{
    EngineConfig cfg;
    cfg.isa = rc.isa;
    cfg.cpu = rc.cpu.has_value()
        ? *rc.cpu
        : (rc.isa == IsaFlavour::X64Like ? CpuConfig::x64Server()
                                         : CpuConfig::arm64Server());
    cfg.passes.removeGroup = rc.removeChecks;
    cfg.passes.staticElim = rc.staticElim;
    cfg.passes.verifyLevel = rc.verifyLevel;
    cfg.removeDeoptBranches = rc.removeBranchesOnly;
    cfg.smiLoadExtension = rc.smiExtension;
    cfg.mapCheckExtension = rc.mapCheckExtension;
    cfg.enableOptimization = rc.enableOptimization;
    cfg.samplerEnabled = rc.samplerEnabled;
    cfg.samplerPeriodCycles = rc.samplerPeriod;
    cfg.profiling = rc.profiling;
    cfg.deoptCost = rc.deoptCost;
    cfg.trace = rc.trace;
    cfg.faults = rc.faults;
    cfg.maxFuelCycles = rc.maxFuelCycles;
    cfg.predecode = rc.predecode;
    cfg.randomSeed = rc.seed;
    if (rc.jitter != 0) {
        cfg.samplerPeriodCycles += 2 * rc.jitter + 1;
        cfg.tiering.optimizeAfterInvocations = 2 + rc.jitter % 2;
        cfg.randomSeed += rc.jitter * 7919;
        cfg.layoutJitterBytes = rc.jitter * 712 + (rc.jitter % 7) * 64;
    }
    return cfg;
}

RunOutcome
runWorkload(const Workload &w, const RunConfig &rc,
            const std::string *reference)
{
    RunOutcome out;
    u32 size = rc.size != 0 ? rc.size : w.defaultSize;

    try {
        Engine engine(engineConfigFor(rc));
        engine.traceLabel = w.name;
        engine.loadProgram(instantiate(w, size));

        size_t deopts_seen = 0;
        for (u32 i = 0; i < rc.iterations; i++) {
            Cycles before = engine.totalCycles();
            engine.call("bench");
            Cycles after = engine.totalCycles();
            out.iterationCycles.push_back(after - before);
            out.deoptEventsPerIteration.push_back(
                static_cast<u32>(engine.deoptLog.size() - deopts_seen));
            deopts_seen = engine.deoptLog.size();
        }
        out.totalDeopts = engine.deoptLog.size();

        Value checksum = engine.call("verify");
        out.checksum = engine.vm.display(checksum);
        out.completed = true;

        out.sim = engine.timing->stats;
        out.sim.branches = engine.timing->predictor.branches;
        out.sim.mispredicts = engine.timing->predictor.mispredicts;
        out.interpreterCycles = engine.interpreterCycles;
        out.totalCycles = engine.totalCycles();
        out.compilations = engine.compilations;

        // vproof: classification totals + per-(function, line) audit.
        out.provenPerGroup = engine.proofStats.proven;
        out.neededPerGroup = engine.proofStats.needed;
        out.unknownPerGroup = engine.proofStats.unknown;
        out.checksElided = engine.proofStats.elided;
        out.checkAudit = engine.checkAudit;

        out.traceTotalDeopts = engine.trace.counters.totalDeopts();
        out.traceCompilations =
            engine.trace.counters.get(TraceCounter::Compilations);
        out.traceIcMegamorphic =
            engine.trace.counters.get(TraceCounter::IcToMegamorphic);
        out.traceGcCycles =
            engine.trace.counters.get(TraceCounter::GcCycles);

        out.regallocSpills =
            engine.trace.counters.get(TraceCounter::RegallocSpills);
        out.regallocSplits =
            engine.trace.counters.get(TraceCounter::RegallocSplits);
        out.regallocReloads =
            engine.trace.counters.get(TraceCounter::RegallocReloads);
        out.regallocSpillSlots =
            engine.trace.counters.get(TraceCounter::RegallocSpillSlots);
        out.regallocCalleeSaved =
            engine.trace.counters.get(TraceCounter::RegallocCalleeSaved);

        // Static code metrics over every compiled code object.
        int window = defaultWindowFor(rc.isa);
        for (const auto &code : engine.codeObjects) {
            out.staticInstructions += code->code.size();
            // Static per-group counts use *checks*, not instructions.
            for (const auto &chk : code->checks)
                out.staticChecksPerGroup[static_cast<size_t>(chk.group)]++;
            out.staticChecks += code->checks.size();
        }
        // Aggregate sampler attributions from the metadata snapshots
        // the sampler pinned at first sample — never from live code
        // objects, so samples of since-discarded code still attribute
        // correctly (vprof satellite).
        for (const auto &[code_id, hist] : engine.sampler.histograms) {
            const CodeObjectMeta *meta = engine.sampler.metaFor(code_id);
            if (meta == nullptr)
                continue;
            out.window += attributeWindowHeuristic(*meta, hist, window);
            out.truth += attributeGroundTruth(*meta, hist);
        }
        if (rc.profiling) {
            FunctionNamer namer = [&engine](FunctionId id) {
                return id < engine.functions.count()
                    ? engine.functions.at(id).name
                    : "fn#" + std::to_string(id);
            };
            out.profile = std::make_shared<Profile>(buildProfile(
                engine.sampler, namer, w.name,
                isaFlavourName(rc.isa), window));
        }
        if (rc.deoptCost) {
            // vdcost: close episodes still open at run end, then fold
            // the tracker into the per-site summary.
            engine.episodes.finish(engine.interpreterCycles,
                                   engine.totalCycles());
            out.deoptCost = summarizeEpisodes(
                engine.episodes,
                [&engine](FunctionId id) {
                    return id < engine.functions.count()
                        ? engine.functions.at(id).name
                        : "fn#" + std::to_string(id);
                },
                out.totalCycles);
        }
        // perf samples the whole process, but the PC sampler only sees
        // simulated (optimized) code. Account the cycles spent in the
        // interpreter, builtins and runtime helpers as non-check
        // samples so overheads are fractions of *total* time — this is
        // why the paper's regex/string benchmarks show ~0 overhead:
        // their time is builtin time.
        if (rc.samplerEnabled && rc.samplerPeriod > 0) {
            u64 expected = out.totalCycles / rc.samplerPeriod;
            if (expected > out.window.totalSamples) {
                u64 extra = expected - out.window.totalSamples;
                out.window.totalSamples += extra;
                out.truth.totalSamples += extra;
            }
        }
        // Fig. 1 metric: check *instructions* per 100 instructions,
        // weighted by dynamic execution (committed instructions).
        if (out.sim.instructions > 0) {
            out.staticCheckFreqPer100 =
                100.0 * static_cast<double>(out.sim.checkInstructions)
                / static_cast<double>(out.sim.instructions);
        }
    } catch (const EngineError &ee) {
        // Structured degradation: the run failed but the fault is
        // classified — experiments can assert on the kind.
        out.completed = false;
        out.error = ee.what();
        out.errorKind = engineErrorKindName(ee.kind);
    } catch (const std::exception &ex) {
        out.completed = false;
        out.error = ex.what();
    }

    if (reference != nullptr)
        out.valid = out.completed && out.checksum == *reference;
    else
        out.valid = out.completed;
    return out;
}

namespace
{

// Process-wide memos, shared by every vpar worker thread. Entries are
// never erased or overwritten, so references into the maps stay valid
// after the lock is dropped.
std::mutex g_ref_mu;
std::map<std::string, std::string> g_ref_cache;

std::mutex g_safe_mu;
std::map<std::string, std::array<bool, kNumGroups>> g_safe_cache;

std::string
serializeRemovalSet(const std::array<bool, kNumGroups> &set)
{
    std::string s;
    for (bool b : set)
        s += b ? '1' : '0';
    return s;
}

bool
deserializeRemovalSet(const std::string &s,
                      std::array<bool, kNumGroups> &set)
{
    if (s.size() != kNumGroups)
        return false;
    for (size_t g = 0; g < kNumGroups; g++) {
        if (s[g] != '0' && s[g] != '1')
            return false;
        set[g] = s[g] == '1';
    }
    return true;
}

} // namespace

const std::string &
referenceChecksum(const Workload &w, u32 size, u32 iterations)
{
    std::string key = w.name + "#" + std::to_string(size) + "#"
                      + std::to_string(iterations);
    {
        std::unique_lock<std::mutex> lock(g_ref_mu);
        auto it = g_ref_cache.find(key);
        if (it != g_ref_cache.end()) {
            par::bumpHarnessCounter(par::HarnessCounter::RefCacheHits);
            return it->second;
        }
    }

    // L2: the persistent cross-process cache. Reference runs always
    // clear fault injection, so entries are safe to reuse even when
    // the surrounding experiment runs under VSPEC_FAULT.
    u64 disk_key = par::referenceCacheKey(w, size, iterations);
    std::string checksum;
    if (par::PersistentCache::instance().get("ref", disk_key, checksum)) {
        par::bumpHarnessCounter(par::HarnessCounter::RefCacheHits);
    } else {
        par::bumpHarnessCounter(par::HarnessCounter::RefCacheMisses);
        RunConfig rc;
        rc.iterations = iterations;
        rc.size = size;
        rc.samplerEnabled = false;
        // The reference is the unperturbed ground truth: never inject
        // faults into it, even when VSPEC_FAULT is set for the
        // experiment.
        rc.faults = FaultConfig{};
        RunOutcome ref = runWorkload(w, rc, nullptr);
        if (!ref.completed)
            vpanic("reference run failed for " + w.name + ": "
                   + ref.error);
        checksum = ref.checksum;
        par::PersistentCache::instance().put("ref", disk_key, checksum);
    }
    std::unique_lock<std::mutex> lock(g_ref_mu);
    return g_ref_cache.emplace(key, std::move(checksum)).first->second;
}

std::array<bool, kNumGroups>
findSafeRemovalSet(const Workload &w, RunConfig base, u32 probe_iterations)
{
    base.iterations = probe_iterations;
    base.samplerEnabled = false;
    u32 size = base.size != 0 ? base.size : w.defaultSize;

    // The search costs up to 8 full runs; benches call it for several
    // experiments, so memoize per (workload, size, isa, probes).
    std::string key = w.name + "#" + std::to_string(size) + "#"
                      + isaFlavourName(base.isa) + "#"
                      + std::to_string(probe_iterations);
    {
        std::unique_lock<std::mutex> lock(g_safe_mu);
        auto hit = g_safe_cache.find(key);
        if (hit != g_safe_cache.end()) {
            par::bumpHarnessCounter(
                par::HarnessCounter::SafeSetCacheHits);
            return hit->second;
        }
    }

    // L2: persistent cache, keyed by the instantiated source + the
    // full result-affecting RunConfig fingerprint. Fault injection
    // perturbs probe outcomes, so those searches are never persisted.
    const bool persistable = !base.faults.any();
    u64 disk_key = par::safeSetCacheKey(w, base, probe_iterations);
    if (persistable) {
        std::string stored;
        std::array<bool, kNumGroups> set{};
        if (par::PersistentCache::instance().get("safeset", disk_key,
                                                 stored)
            && deserializeRemovalSet(stored, set)) {
            par::bumpHarnessCounter(
                par::HarnessCounter::SafeSetCacheHits);
            std::unique_lock<std::mutex> lock(g_safe_mu);
            return g_safe_cache.emplace(key, set).first->second;
        }
    }
    par::bumpHarnessCounter(par::HarnessCounter::SafeSetCacheMisses);

    const std::string &ref = referenceChecksum(w, size, probe_iterations);

    std::array<bool, kNumGroups> removed{};
    removed.fill(true);

    auto memoize = [&](const std::array<bool, kNumGroups> &set) {
        if (persistable)
            par::PersistentCache::instance().put(
                "safeset", disk_key, serializeRemovalSet(set));
        std::unique_lock<std::mutex> lock(g_safe_mu);
        g_safe_cache.emplace(key, set);
        return set;
    };

    RunConfig all = base;
    all.removeChecks = removed;
    if (runWorkload(w, all, &ref).valid)
        return memoize(removed);

    // Drop one group at a time: keep a group's checks when removing
    // them (individually) breaks the run, then verify the combination
    // and keep shrinking until it passes.
    for (size_t g = 0; g < kNumGroups; g++) {
        std::array<bool, kNumGroups> only{};
        only[g] = true;
        RunConfig probe = base;
        probe.removeChecks = only;
        if (!runWorkload(w, probe, &ref).valid)
            removed[g] = false;
    }
    RunConfig combo = base;
    combo.removeChecks = removed;
    while (combo.anyRemoval() && !runWorkload(w, combo, &ref).valid) {
        // Interactions between groups: drop the largest remaining one.
        for (size_t g = 0; g < kNumGroups; g++) {
            if (combo.removeChecks[g]) {
                combo.removeChecks[g] = false;
                break;
            }
        }
    }
    return memoize(combo.removeChecks);
}

double
leftoverCheckFraction(const Workload &w, const RunConfig &base,
                      const std::array<bool, kNumGroups> &removed)
{
    RunConfig none = base;
    none.removeChecks.fill(false);
    none.samplerEnabled = false;
    RunConfig with = base;
    with.removeChecks = removed;
    with.samplerEnabled = false;

    RunOutcome a = runWorkload(w, none, nullptr);
    RunOutcome b = runWorkload(w, with, nullptr);
    if (!a.completed || !b.completed || a.sim.checkInstructions == 0)
        return 1.0;
    return static_cast<double>(b.sim.checkInstructions)
           / static_cast<double>(a.sim.checkInstructions);
}

} // namespace vspec
