/**
 * @file
 * Raw MiniJS sources for every workload in the suite. Kept separate
 * from the registry (suite.cc) so the texts are easy to review. Each
 * source defines top-level setup, `bench()` and `verify()`; `%SIZE%`
 * is replaced with the workload's size parameter.
 */

#ifndef VSPEC_WORKLOADS_SOURCES_HH
#define VSPEC_WORKLOADS_SOURCES_HH

namespace vspec
{
namespace sources
{

// Sparse linear algebra (the paper's custom kernels, §II-C).
extern const char *kSpmvCsrFloat;
extern const char *kSpmvCsrInt;
extern const char *kSpmvCsrSmi;
extern const char *kSpmm;
extern const char *kMmul;
extern const char *kIm2col;
extern const char *kDotProduct;
extern const char *kBlur;

// Mathematical.
extern const char *kNavierStokesLite;
extern const char *kNbody;
extern const char *kFftLite;
extern const char *kPrimeSieve;
extern const char *kSpectralNorm;
extern const char *kGrowingSum;

// Crypto.
extern const char *kCrypModexp;
extern const char *kAes2;
extern const char *kHashFnv;
extern const char *kCrc32;

// String manipulation.
extern const char *kStrBuild;
extern const char *kStrEq;
extern const char *kBase64;
extern const char *kTagCase;

// Regular expressions.
extern const char *kRegexDna;
extern const char *kRegexLog;
extern const char *kRegexRedact;

// Language parsing.
extern const char *kJsonParse;
extern const char *kCodeLoad;
extern const char *kCsvParse;

// Object-heavy.
extern const char *kRichardsLite;
extern const char *kSplayLite;
extern const char *kPolyShapes;
extern const char *kKindShift;

} // namespace sources
} // namespace vspec

#endif // VSPEC_WORKLOADS_SOURCES_HH
