/**
 * @file
 * The extended benchmark suite: MiniJS workloads across the same
 * categories as the paper's extended JetStream2 (mathematical, crypto,
 * string manipulation, regular expressions, language parsing,
 * object-heavy) plus the custom sparse linear-algebra kernels (§II-C)
 * and the SMI-intensive gem5 subset of §V.
 *
 * Protocol: each workload's top-level code performs setup; `bench()`
 * is called once per iteration; `verify()` returns a deterministic
 * checksum used to detect corrupted executions when checks are
 * removed.
 */

#ifndef VSPEC_WORKLOADS_SUITE_HH
#define VSPEC_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

enum class Category : u8
{
    Sparse,
    Math,
    Crypto,
    String,
    Regex,
    Parsing,
    Objects,
};

const char *categoryName(Category c);

struct Workload
{
    std::string name;       //!< long name, e.g. "SPMV-CSR-SMI"
    std::string tag;        //!< short tag used in tables, e.g. "SPS"
    Category category = Category::Math;
    std::string source;     //!< MiniJS, with %SIZE% placeholder

    u32 defaultSize = 0;    //!< substituted for %SIZE% by default
    u32 gem5Size = 0;       //!< smaller size for detailed-model runs
    bool inGem5Subset = false;  //!< §V SMI-intensive selection
};

/** The full suite, in canonical order. */
const std::vector<Workload> &suite();

/** Workloads of the §V gem5 subset. */
std::vector<const Workload *> gem5Subset();

/** Find by name; nullptr when absent. */
const Workload *findWorkload(const std::string &name);

/** Source text with %SIZE% substituted. */
std::string instantiate(const Workload &w, u32 size);

} // namespace vspec

#endif // VSPEC_WORKLOADS_SUITE_HH
