#include "workloads/sources.hh"

namespace vspec
{
namespace sources
{

// =====================================================================
// Sparse linear algebra kernels (§II-C custom benchmarks)
// =====================================================================

const char *kSpmvCsrFloat = R"JS(
var N = %SIZE%;
var rowPtr = [];
var cols = [];
var vals = [];
var xv = [];
var yv = [];

function setup() {
    var nnz = 0;
    for (var i = 0; i < N; i++) {
        rowPtr.push(nnz);
        for (var j = 0; j < 8; j++) {
            cols.push((i * 7 + j * 37) % N);
            vals.push(((i + j * 3) % 50) * 0.25 + 0.5);
            nnz = nnz + 1;
        }
    }
    rowPtr.push(nnz);
    for (var k = 0; k < N; k++) {
        xv.push((k % 40) * 0.125 + 1.0);
        yv.push(0.0);
    }
}
setup();

function bench() {
    var sum = 0.0;
    for (var i = 0; i < N; i++) {
        var acc = 0.0;
        var lo = rowPtr[i];
        var hi = rowPtr[i + 1];
        for (var j = lo; j < hi; j++) {
            acc = acc + vals[j] * xv[cols[j]];
        }
        yv[i] = acc;
        sum = sum + acc;
    }
    return sum;
}

function verify() {
    var s = 0.0;
    for (var i = 0; i < N; i++) { s = s + yv[i]; }
    return Math.floor(s * 100);
}
)JS";

const char *kSpmvCsrInt = R"JS(
var N = %SIZE%;
var rowPtr = [];
var cols = [];
var vals = [];
var xv = [];
var yv = [];

function setup() {
    // "Large integers": values outside SMI range, stored as float64.
    var big = 1099511627776;  // 2^40
    var nnz = 0;
    for (var i = 0; i < N; i++) {
        rowPtr.push(nnz);
        for (var j = 0; j < 8; j++) {
            cols.push((i * 11 + j * 29) % N);
            vals.push(big + (i + j) % 100);
            nnz = nnz + 1;
        }
    }
    rowPtr.push(nnz);
    for (var k = 0; k < N; k++) {
        xv.push(big + k % 64);
        yv.push(0);
    }
}
setup();

function bench() {
    var sum = 0.0;
    for (var i = 0; i < N; i++) {
        var acc = 0.0;
        var lo = rowPtr[i];
        var hi = rowPtr[i + 1];
        for (var j = lo; j < hi; j++) {
            acc = acc + vals[j] * xv[cols[j]];
        }
        yv[i] = acc;
        sum = sum + acc % 1048576;
    }
    return sum;
}

function verify() {
    var s = 0.0;
    for (var i = 0; i < N; i++) { s = s + yv[i] % 65536; }
    return Math.floor(s);
}
)JS";

const char *kSpmvCsrSmi = R"JS(
var N = %SIZE%;
var rowPtr = [];
var cols = [];
var vals = [];
var xv = [];
var yv = [];

function setup() {
    var nnz = 0;
    for (var i = 0; i < N; i++) {
        rowPtr.push(nnz);
        for (var j = 0; j < 8; j++) {
            cols.push((i * 7 + j * 37) % N);
            vals.push(((i + j * 3) % 50) + 1);
            nnz = nnz + 1;
        }
    }
    rowPtr.push(nnz);
    for (var k = 0; k < N; k++) {
        xv.push((k % 40) + 1);
        yv.push(0);
    }
}
setup();

function bench() {
    var sum = 0;
    for (var i = 0; i < N; i++) {
        var acc = 0;
        var lo = rowPtr[i];
        var hi = rowPtr[i + 1];
        for (var j = lo; j < hi; j++) {
            acc = acc + vals[j] * xv[cols[j]];
        }
        yv[i] = acc;
        sum = (sum + acc) % 1048576;
    }
    return sum;
}

function verify() {
    var s = 0;
    for (var i = 0; i < N; i++) { s = (s + yv[i]) % 1048576; }
    return s;
}
)JS";

const char *kSpmm = R"JS(
var N = %SIZE%;
var M = 8;
var rowPtr = [];
var cols = [];
var vals = [];
var bmat = [];
var cmat = [];

function setup() {
    var nnz = 0;
    for (var i = 0; i < N; i++) {
        rowPtr.push(nnz);
        for (var j = 0; j < 6; j++) {
            cols.push((i * 13 + j * 41) % N);
            vals.push(((i + j) % 9) + 1);
            nnz = nnz + 1;
        }
    }
    rowPtr.push(nnz);
    for (var p = 0; p < N * M; p++) {
        bmat.push((p % 11) + 1);
        cmat.push(0);
    }
}
setup();

function bench() {
    for (var i = 0; i < N; i++) {
        var lo = rowPtr[i];
        var hi = rowPtr[i + 1];
        for (var j = 0; j < M; j++) {
            var acc = 0;
            for (var k = lo; k < hi; k++) {
                acc = acc + vals[k] * bmat[cols[k] * M + j];
            }
            cmat[i * M + j] = acc % 8192;
        }
    }
    return cmat[(N - 1) * M + M - 1];
}

function verify() {
    var s = 0;
    for (var i = 0; i < N * M; i++) { s = (s + cmat[i]) % 1048576; }
    return s;
}
)JS";

const char *kMmul = R"JS(
var N = %SIZE%;
var am = [];
var bm = [];
var cm = [];

function setup() {
    for (var i = 0; i < N * N; i++) {
        am.push((i % 13) + 1);
        bm.push((i % 7) + 1);
        cm.push(0);
    }
}
setup();

function bench() {
    for (var i = 0; i < N; i++) {
        for (var j = 0; j < N; j++) {
            var acc = 0;
            for (var k = 0; k < N; k++) {
                acc = acc + am[i * N + k] * bm[k * N + j];
            }
            cm[i * N + j] = acc % 16384;
        }
    }
    return cm[N * N - 1];
}

function verify() {
    var s = 0;
    for (var i = 0; i < N * N; i++) { s = (s + cm[i]) % 1048576; }
    return s;
}
)JS";

const char *kIm2col = R"JS(
var W = %SIZE%;
var H = %SIZE%;
var K = 3;
var img = [];
var colsOut = [];

function setup() {
    for (var i = 0; i < W * H; i++) { img.push((i * 17) % 251); }
    var outW = W - K + 1;
    var outH = H - K + 1;
    for (var i = 0; i < outW * outH * K * K; i++) { colsOut.push(0); }
}
setup();

function bench() {
    var outW = W - K + 1;
    var outH = H - K + 1;
    var idx = 0;
    for (var y = 0; y < outH; y++) {
        for (var x = 0; x < outW; x++) {
            for (var ky = 0; ky < K; ky++) {
                for (var kx = 0; kx < K; kx++) {
                    colsOut[idx] = img[(y + ky) * W + (x + kx)];
                    idx = idx + 1;
                }
            }
        }
    }
    return idx;
}

function verify() {
    var s = 0;
    var n = colsOut.length;
    for (var i = 0; i < n; i++) { s = (s + colsOut[i]) % 1048576; }
    return s;
}
)JS";

const char *kDotProduct = R"JS(
var N = %SIZE%;
var av = [];
var bv = [];

function setup() {
    for (var i = 0; i < N; i++) {
        av.push((i % 30) + 1);
        bv.push((i % 25) + 1);
    }
}
setup();

function bench() {
    var s = 0;
    for (var i = 0; i < N; i++) {
        s = (s + av[i] * bv[i]) % 65536;
    }
    return s;
}

function verify() { return bench(); }
)JS";

const char *kBlur = R"JS(
var W = %SIZE%;
var H = %SIZE%;
var img = [];
var out = [];

function setup() {
    for (var i = 0; i < W * H; i++) {
        img.push((i * 31 + 7) % 256);
        out.push(0);
    }
}
setup();

function bench() {
    // 3x3 binomial blur on the interior; integer arithmetic with a
    // final shift, all SMI.
    for (var y = 1; y < H - 1; y++) {
        for (var x = 1; x < W - 1; x++) {
            var p = y * W + x;
            var acc = img[p - W - 1] + 2 * img[p - W] + img[p - W + 1]
                    + 2 * img[p - 1] + 4 * img[p] + 2 * img[p + 1]
                    + img[p + W - 1] + 2 * img[p + W] + img[p + W + 1];
            out[p] = acc >> 4;
        }
    }
    return out[W + 1];
}

function verify() {
    var s = 0;
    for (var i = 0; i < W * H; i++) { s = (s + out[i]) % 1048576; }
    return s;
}
)JS";

// =====================================================================
// Mathematical
// =====================================================================

const char *kNavierStokesLite = R"JS(
var N = %SIZE%;
var u0 = [];
var u1 = [];

function setup() {
    for (var i = 0; i < N * N; i++) {
        u0.push(((i * 13) % 97) * 0.01);
        u1.push(0.0);
    }
}
setup();

function diffuse(src, dst) {
    var a = 0.1;
    for (var y = 1; y < N - 1; y++) {
        for (var x = 1; x < N - 1; x++) {
            var p = y * N + x;
            dst[p] = (src[p] + a * (src[p - 1] + src[p + 1]
                     + src[p - N] + src[p + N])) / (1.0 + 4.0 * a);
        }
    }
}

function bench() {
    diffuse(u0, u1);
    diffuse(u1, u0);
    return u0[N + 1];
}

function verify() {
    var s = 0.0;
    for (var i = 0; i < N * N; i++) { s = s + u0[i]; }
    return Math.floor(s * 1000);
}
)JS";

const char *kNbody = R"JS(
var COUNT = 5;
var px = []; var py = []; var pz = [];
var vx = []; var vy = []; var vz = [];
var mass = [];

function setup() {
    var i = 0;
    while (i < COUNT) {
        px.push(i * 1.5 - 3.0); py.push(i * 0.7 - 1.2); pz.push(i * 0.3);
        vx.push(0.01 * i); vy.push(0.02 * (COUNT - i)); vz.push(0.0);
        mass.push(1.0 + 0.1 * i);
        i = i + 1;
    }
}
setup();

function advance(dt) {
    for (var i = 0; i < COUNT; i++) {
        for (var j = i + 1; j < COUNT; j++) {
            var dx = px[i] - px[j];
            var dy = py[i] - py[j];
            var dz = pz[i] - pz[j];
            var d2 = dx * dx + dy * dy + dz * dz + 0.1;
            var mag = dt / (d2 * Math.sqrt(d2));
            vx[i] = vx[i] - dx * mass[j] * mag;
            vy[i] = vy[i] - dy * mass[j] * mag;
            vz[i] = vz[i] - dz * mass[j] * mag;
            vx[j] = vx[j] + dx * mass[i] * mag;
            vy[j] = vy[j] + dy * mass[i] * mag;
            vz[j] = vz[j] + dz * mass[i] * mag;
        }
    }
    for (var k = 0; k < COUNT; k++) {
        px[k] = px[k] + dt * vx[k];
        py[k] = py[k] + dt * vy[k];
        pz[k] = pz[k] + dt * vz[k];
    }
}

function bench() {
    var steps = %SIZE%;
    for (var s = 0; s < steps; s++) { advance(0.01); }
    return px[0];
}

function energy() {
    var e = 0.0;
    for (var i = 0; i < COUNT; i++) {
        e = e + 0.5 * mass[i]
            * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
    }
    return e;
}

function verify() { return Math.floor(energy() * 10000); }
)JS";

const char *kFftLite = R"JS(
var N = %SIZE%;
var re = [];
var im = [];

function setup() {
    for (var i = 0; i < N; i++) {
        re.push(Math.sin(i * 0.37) + 0.5 * Math.sin(i * 0.11));
        im.push(0.0);
    }
}
setup();

function fft() {
    // Iterative radix-2 Cooley-Tukey with bit-reversal permutation.
    var n = N;
    var j = 0;
    for (var i = 1; i < n; i++) {
        var bit = n >> 1;
        while ((j & bit) != 0) {
            j = j ^ bit;
            bit = bit >> 1;
        }
        j = j | bit;
        if (i < j) {
            var tr = re[i]; re[i] = re[j]; re[j] = tr;
            var ti = im[i]; im[i] = im[j]; im[j] = ti;
        }
    }
    for (var len = 2; len <= n; len = len << 1) {
        var ang = 6.283185307179586 / len;
        var half = len >> 1;
        for (var base = 0; base < n; base = base + len) {
            for (var k = 0; k < half; k++) {
                var wr = Math.cos(ang * k);
                var wi = Math.sin(ang * k);
                var p = base + k;
                var q = p + half;
                var xr = re[q] * wr - im[q] * wi;
                var xi = re[q] * wi + im[q] * wr;
                re[q] = re[p] - xr; im[q] = im[p] - xi;
                re[p] = re[p] + xr; im[p] = im[p] + xi;
            }
        }
    }
}

function bench() {
    fft();
    return re[1];
}

function verify() {
    var s = 0.0;
    for (var i = 0; i < N; i++) {
        s = s + re[i] * re[i] + im[i] * im[i];
    }
    return Math.floor(s) % 1048576;
}
)JS";

const char *kPrimeSieve = R"JS(
var N = %SIZE%;
var flags = [];

function setup() {
    for (var i = 0; i <= N; i++) { flags.push(1); }
}
setup();

function bench() {
    for (var i = 0; i <= N; i++) { flags[i] = 1; }
    var count = 0;
    for (var p = 2; p * p <= N; p++) {
        if (flags[p] == 1) {
            for (var q = p * p; q <= N; q = q + p) { flags[q] = 0; }
        }
    }
    for (var k = 2; k <= N; k++) { count = count + flags[k]; }
    return count;
}

function verify() { return bench(); }
)JS";

const char *kSpectralNorm = R"JS(
var N = %SIZE%;
var uvec = [];
var vvec = [];
var tmp = [];

function setup() {
    for (var i = 0; i < N; i++) { uvec.push(1.0); vvec.push(0.0); tmp.push(0.0); }
}
setup();

function aElem(i, j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}

function multiplyAv(src, dst) {
    for (var i = 0; i < N; i++) {
        var s = 0.0;
        for (var j = 0; j < N; j++) { s = s + aElem(i, j) * src[j]; }
        dst[i] = s;
    }
}

function multiplyAtv(src, dst) {
    for (var i = 0; i < N; i++) {
        var s = 0.0;
        for (var j = 0; j < N; j++) { s = s + aElem(j, i) * src[j]; }
        dst[i] = s;
    }
}

function bench() {
    multiplyAv(uvec, tmp);
    multiplyAtv(tmp, vvec);
    var vbv = 0.0;
    var vv = 0.0;
    for (var i = 0; i < N; i++) {
        vbv = vbv + uvec[i] * vvec[i];
        vv = vv + vvec[i] * vvec[i];
    }
    return Math.sqrt(vbv / vv);
}

function verify() { return Math.floor(bench() * 1000000); }
)JS";

const char *kGrowingSum = R"JS(
// Accumulates across iterations and crosses the SMI boundary mid-run:
// the overflow check in optimized code *will* fire (deopt-eager), and
// removing Arithmetic checks corrupts the result — one of the paper's
// "cannot remove all checks" benchmarks.
var total = 0;
var STEP = %SIZE%;

function bench() {
    for (var i = 0; i < 1000; i++) {
        total = total + STEP;
    }
    return total;
}

function verify() { return total % 9973; }
)JS";

// =====================================================================
// Crypto
// =====================================================================

const char *kCrypModexp = R"JS(
// Bignum-lite modular exponentiation with 15-bit limbs (products stay
// far below the SMI boundary, like real JS bignum code).
var LIMBS = %SIZE%;
var base = [];
var modulus = [];
var result = [];
var scratch = [];

function setup() {
    for (var i = 0; i < LIMBS; i++) {
        base.push((i * 2311 + 17) % 32768);
        modulus.push((i * 1999 + 259) % 32768);
        result.push(0);
        scratch.push(0);
    }
    modulus[LIMBS - 1] = 32767;
}
setup();

function mulmod(a, b, out) {
    // Schoolbook product of the low halves, reduced limb-wise: not real
    // bignum math, but the same instruction mix (SMI mul + add + mod).
    for (var i = 0; i < LIMBS; i++) { scratch[i] = 0; }
    for (var i = 0; i < LIMBS; i++) {
        var ai = a[i];
        var carry = 0;
        for (var j = 0; j < LIMBS - i; j++) {
            var t = scratch[i + j] + ai * b[j] % 32768 + carry;
            scratch[i + j] = t % 32768;
            carry = (t - t % 32768) / 32768;
        }
    }
    for (var k = 0; k < LIMBS; k++) {
        out[k] = scratch[k] % (modulus[k] + 1);
    }
}

function bench() {
    for (var i = 0; i < LIMBS; i++) { result[i] = (i * 773 + 5) % 32768; }
    for (var e = 0; e < 6; e++) {
        mulmod(result, base, result);
    }
    var s = 0;
    for (var i = 0; i < LIMBS; i++) { s = (s + result[i]) % 1048576; }
    return s;
}

function verify() { return bench(); }
)JS";

const char *kAes2 = R"JS(
// AES-like round function on SMI byte arrays: S-box lookups (indirect
// SMI loads), shifts and XORs. Not real AES, same memory/check mix.
var BLOCKS = %SIZE%;
var sbox = [];
var state = [];
var keys = [];

function setup() {
    for (var i = 0; i < 256; i++) {
        sbox.push((i * 7 + 99) % 256);
    }
    for (var b = 0; b < BLOCKS * 16; b++) {
        state.push((b * 31) % 256);
        keys.push((b * 57 + 3) % 256);
    }
}
setup();

function round(off) {
    // SubBytes + ShiftRows-ish mix + AddRoundKey for one block.
    for (var i = 0; i < 16; i++) {
        state[off + i] = sbox[state[off + i]];
    }
    for (var c = 0; c < 4; c++) {
        var a0 = state[off + c];
        var a1 = state[off + 4 + (c + 1) % 4];
        var a2 = state[off + 8 + (c + 2) % 4];
        var a3 = state[off + 12 + (c + 3) % 4];
        var m = a0 ^ a1 ^ a2 ^ a3;
        state[off + c] = (a0 ^ m ^ keys[off + c]) & 255;
        state[off + 4 + c] = (a1 ^ m ^ keys[off + 4 + c]) & 255;
        state[off + 8 + c] = (a2 ^ m ^ keys[off + 8 + c]) & 255;
        state[off + 12 + c] = (a3 ^ m ^ keys[off + 12 + c]) & 255;
    }
}

function bench() {
    for (var b = 0; b < BLOCKS; b++) {
        for (var r = 0; r < 10; r++) {
            round(b * 16);
        }
    }
    return state[0];
}

function verify() {
    var s = 0;
    var n = state.length;
    for (var i = 0; i < n; i++) { s = (s + state[i] * (i % 7 + 1)) % 1048576; }
    return s;
}
)JS";

const char *kHashFnv = R"JS(
// FNV-style rolling hash masked to stay within SMI range.
var N = %SIZE%;
var data = [];
var hashes = [];

function setup() {
    for (var i = 0; i < N; i++) { data.push((i * 131 + 7) % 256); }
    for (var j = 0; j < 64; j++) { hashes.push(0); }
}
setup();

function bench() {
    for (var h = 0; h < 64; h++) {
        var acc = 2166136 + h;
        for (var i = 0; i < N; i++) {
            acc = ((acc ^ data[i]) * 167) & 268435455;
        }
        hashes[h] = acc;
    }
    return hashes[63];
}

function verify() {
    var s = 0;
    for (var i = 0; i < 64; i++) { s = (s + hashes[i]) % 1048576; }
    return s;
}
)JS";

const char *kCrc32 = R"JS(
// Table-driven CRC-32 over full 32-bit words: values leave SMI range,
// so steady-state code runs on the Number path with precision checks.
var N = %SIZE%;
var table = [];
var data = [];
var crcOut = 0;

function setup() {
    for (var n = 0; n < 256; n++) {
        var c = n;
        for (var k = 0; k < 8; k++) {
            if ((c & 1) == 1) {
                c = 3988292384 ^ (c >>> 1);
            } else {
                c = c >>> 1;
            }
        }
        table.push(c);
    }
    for (var i = 0; i < N; i++) { data.push((i * 89 + 21) % 256); }
}
setup();

function bench() {
    var c = -1;
    for (var i = 0; i < N; i++) {
        c = table[(c ^ data[i]) & 255] ^ (c >>> 8);
    }
    crcOut = (c ^ -1) & 1048575;
    return crcOut;
}

function verify() { return bench(); }
)JS";

// =====================================================================
// String manipulation
// =====================================================================

const char *kStrBuild = R"JS(
var N = %SIZE%;
var words = [];
var built = "";

function setup() {
    for (var i = 0; i < 16; i++) {
        words.push("w" + i + "x");
    }
}
setup();

function bench() {
    var s = "";
    for (var i = 0; i < N; i++) {
        s = s + words[i % 16];
        if (s.length > 512) { s = s.substring(0, 32); }
    }
    built = s;
    return s.length;
}

function verify() {
    var s = 0;
    var n = built.length;
    for (var i = 0; i < n; i++) { s = (s + built.charCodeAt(i) * (i + 1)) % 1048576; }
    return s;
}
)JS";

const char *kStrEq = R"JS(
var N = %SIZE%;
var keys = [];
var probes = [];
var hits = 0;

function setup() {
    for (var i = 0; i < N; i++) {
        keys.push("key_" + (i % 64) + "_suffix");
        probes.push("key_" + ((i * 3) % 96) + "_suffix");
    }
}
setup();

function bench() {
    var count = 0;
    for (var i = 0; i < N; i++) {
        for (var j = 0; j < 8; j++) {
            if (probes[i] == keys[(i + j * 17) % N]) {
                count = count + 1;
            }
        }
    }
    hits = count;
    return count;
}

function verify() { return bench(); }
)JS";

const char *kBase64 = R"JS(
var N = %SIZE%;
var alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var input = "";
var encoded = "";

function setup() {
    var s = "";
    for (var i = 0; i < N; i++) {
        s = s + String.fromCharCode(33 + (i * 7) % 90);
    }
    input = s;
}
setup();

function bench() {
    var out = "";
    var n = input.length - input.length % 3;
    for (var i = 0; i < n; i = i + 3) {
        var b0 = input.charCodeAt(i);
        var b1 = input.charCodeAt(i + 1);
        var b2 = input.charCodeAt(i + 2);
        var triple = b0 * 65536 + b1 * 256 + b2;
        out = out + alphabet.charAt((triple >> 18) & 63)
                  + alphabet.charAt((triple >> 12) & 63)
                  + alphabet.charAt((triple >> 6) & 63)
                  + alphabet.charAt(triple & 63);
    }
    encoded = out;
    return out.length;
}

function verify() {
    var s = 0;
    var n = encoded.length;
    for (var i = 0; i < n; i++) { s = (s + encoded.charCodeAt(i)) % 1048576; }
    return s;
}
)JS";

const char *kTagCase = R"JS(
var N = %SIZE%;
var lines = [];
var outCount = 0;

function setup() {
    for (var i = 0; i < N; i++) {
        lines.push("alpha,beta_" + i + ",gamma,delta_" + (i % 13) + ",eps");
    }
}
setup();

function bench() {
    var total = 0;
    for (var i = 0; i < N; i++) {
        var parts = lines[i].split(",");
        var m = parts.length;
        for (var j = 0; j < m; j++) {
            var p = parts[j];
            if (p.indexOf("_") >= 0) {
                total = total + p.length;
            }
        }
    }
    outCount = total;
    return total;
}

function verify() { return bench(); }
)JS";

// =====================================================================
// Regular expressions (executed by the irregexp-lite builtin)
// =====================================================================

const char *kRegexDna = R"JS(
var N = %SIZE%;
var dna = "";

function setup() {
    var bases = "acgt";
    var s = "";
    for (var i = 0; i < N; i++) {
        s = s + bases.charAt((i * 7 + i * i % 5) % 4);
    }
    dna = s;
}
setup();

function bench() {
    var c = 0;
    c = c + reCount("agggtaaa|tttaccct", dna);
    c = c + reCount("[cgt]gggtaaa|tttaccc[acg]", dna);
    c = c + reCount("aggg[acg]aaa|ttt[cgt]ccct", dna);
    c = c + reCount("gg(ta)+a", dna);
    c = c + reCount("c[at]g", dna);
    return c;
}

function verify() { return bench(); }
)JS";

const char *kRegexLog = R"JS(
var N = %SIZE%;
var logLines = [];

function setup() {
    for (var i = 0; i < N; i++) {
        var sev = i % 3 == 0 ? "ERROR" : (i % 3 == 1 ? "WARN" : "INFO");
        logLines.push("2021-07-" + (i % 28 + 1) + " " + sev
                      + " svc" + (i % 9) + ": request id=" + (i * 37 % 10000)
                      + " latency=" + (i % 450) + "ms");
    }
}
setup();

function bench() {
    var errors = 0;
    var slow = 0;
    for (var i = 0; i < N; i++) {
        if (reTest("ERROR", logLines[i])) { errors = errors + 1; }
        if (reTest("latency=[34]\\d\\dms", logLines[i])) { slow = slow + 1; }
    }
    return errors * 1000 + slow;
}

function verify() { return bench(); }
)JS";

const char *kRegexRedact = R"JS(
var N = %SIZE%;
var doc = "";
var redacted = "";

function setup() {
    var s = "";
    for (var i = 0; i < N; i++) {
        s = s + "user" + i + " mail a" + i + "@x.com card 4" + (1000 + i % 9000) + " ok. ";
    }
    doc = s;
}
setup();

function bench() {
    var r = reReplace("\\w+@\\w+\\.\\w+", doc, "<mail>");
    r = reReplace("4\\d\\d\\d\\d", r, "<card>");
    redacted = r;
    return r.length;
}

function verify() {
    var s = 0;
    var n = redacted.length;
    var i = 0;
    while (i < n) { s = (s + redacted.charCodeAt(i)) % 1048576; i = i + 17; }
    return s;
}
)JS";

// =====================================================================
// Language parsing
// =====================================================================

const char *kJsonParse = R"JS(
var N = %SIZE%;
var text = "";
var pos = 0;
var total = 0;

function setup() {
    var s = "[";
    for (var i = 0; i < N; i++) {
        if (i > 0) { s = s + ","; }
        s = s + "{\"id\":" + i + ",\"val\":" + (i * 31 % 997)
              + ",\"tag\":\"t" + (i % 7) + "\"}";
    }
    text = s + "]";
}
setup();

function skipWs() {
    while (pos < text.length) {
        var c = text.charCodeAt(pos);
        if (c != 32 && c != 9 && c != 10) { break; }
        pos = pos + 1;
    }
}

function parseValue() {
    skipWs();
    var c = text.charCodeAt(pos);
    if (c == 91) { return parseArray(); }
    if (c == 123) { return parseObject(); }
    if (c == 34) { return parseString(); }
    return parseNumber();
}

function parseArray() {
    pos = pos + 1;
    var arr = [];
    skipWs();
    if (text.charCodeAt(pos) == 93) { pos = pos + 1; return arr; }
    while (true) {
        arr.push(parseValue());
        skipWs();
        var c = text.charCodeAt(pos);
        pos = pos + 1;
        if (c == 93) { break; }
    }
    return arr;
}

function parseObject() {
    pos = pos + 1;
    var obj = { id: 0, val: 0, tag: "" };
    skipWs();
    if (text.charCodeAt(pos) == 125) { pos = pos + 1; return obj; }
    while (true) {
        skipWs();
        var key = parseString();
        skipWs();
        pos = pos + 1;  // ':'
        var v = parseValue();
        if (key == "id") { obj.id = v; }
        if (key == "val") { obj.val = v; }
        if (key == "tag") { obj.tag = v; }
        skipWs();
        var c = text.charCodeAt(pos);
        pos = pos + 1;
        if (c == 125) { break; }
    }
    return obj;
}

function parseString() {
    pos = pos + 1;  // opening quote
    var start = pos;
    while (text.charCodeAt(pos) != 34) { pos = pos + 1; }
    var s = text.substring(start, pos);
    pos = pos + 1;
    return s;
}

function parseNumber() {
    var start = pos;
    while (pos < text.length) {
        var c = text.charCodeAt(pos);
        if (c < 48 || c > 57) { break; }
        pos = pos + 1;
    }
    return parseInt(text.substring(start, pos));
}

function bench() {
    pos = 0;
    var arr = parseValue();
    var s = 0;
    var n = arr.length;
    for (var i = 0; i < n; i++) {
        s = (s + arr[i].val) % 1048576;
    }
    total = s;
    return s;
}

function verify() { return total; }
)JS";

const char *kCodeLoad = R"JS(
// Multi-Inspector-Code-Load-like: repeatedly lex a large synthetic
// "program" string (cache-hostile sequential character processing).
var N = %SIZE%;
var program = "";

function setup() {
    var s = "";
    for (var i = 0; i < N; i++) {
        s = s + "function f" + i + "(a, b) { return a * " + (i % 97)
              + " + b - " + (i % 13) + "; } ";
    }
    program = s;
}
setup();

function bench() {
    var idents = 0;
    var numbers = 0;
    var puncts = 0;
    var i = 0;
    var n = program.length;
    while (i < n) {
        var c = program.charCodeAt(i);
        if ((c >= 97 && c <= 122) || (c >= 65 && c <= 90)) {
            idents = idents + 1;
            while (i < n) {
                c = program.charCodeAt(i);
                if (!((c >= 97 && c <= 122) || (c >= 65 && c <= 90)
                      || (c >= 48 && c <= 57))) { break; }
                i = i + 1;
            }
        } else if (c >= 48 && c <= 57) {
            numbers = numbers + 1;
            while (i < n) {
                c = program.charCodeAt(i);
                if (c < 48 || c > 57) { break; }
                i = i + 1;
            }
        } else if (c == 32) {
            i = i + 1;
        } else {
            puncts = puncts + 1;
            i = i + 1;
        }
    }
    return idents * 10000 + numbers * 100 + puncts % 100;
}

function verify() { return bench(); }
)JS";

const char *kCsvParse = R"JS(
var N = %SIZE%;
var csv = [];
var sum = 0;

function setup() {
    for (var i = 0; i < N; i++) {
        csv.push(i + "," + (i * 7 % 1000) + "," + (i * 13 % 500) + ","
                 + (i % 2 == 0 ? "yes" : "no"));
    }
}
setup();

function bench() {
    var s = 0;
    for (var i = 0; i < N; i++) {
        var f = csv[i].split(",");
        var a = parseInt(f[0]);
        var b = parseInt(f[1]);
        var c = parseInt(f[2]);
        if (f[3] == "yes") {
            s = (s + a + b * 2 + c * 3) % 1048576;
        }
    }
    sum = s;
    return s;
}

function verify() { return sum; }
)JS";

// =====================================================================
// Object-heavy
// =====================================================================

const char *kRichardsLite = R"JS(
// Richards-like task scheduler: queues of task objects with state
// flags, exercising monomorphic property loads/stores and method-style
// calls through function-valued properties.
var N = %SIZE%;
var tasks = [];
var queueHead = 0;
var workDone = 0;

function makeTask(id, priority) {
    return { id: id, priority: priority, state: 0, work: 0, next: -1 };
}

function setup() {
    for (var i = 0; i < 16; i++) {
        tasks.push(makeTask(i, i % 4));
    }
}
setup();

function runTask(t) {
    t.work = (t.work + t.priority * 3 + 1) % 4096;
    t.state = (t.state + 1) % 3;
    return t.work;
}

function bench() {
    var done = 0;
    for (var round = 0; round < N; round++) {
        for (var i = 0; i < 16; i++) {
            var t = tasks[i];
            if (t.state == 0 || t.state == 1) {
                done = (done + runTask(t)) % 1048576;
            } else {
                t.state = 0;
            }
        }
    }
    workDone = done;
    return done;
}

function verify() {
    var s = workDone;
    for (var i = 0; i < 16; i++) {
        s = (s + tasks[i].work * (i + 1) + tasks[i].state) % 1048576;
    }
    return s;
}
)JS";

const char *kSplayLite = R"JS(
// Splay-tree-like binary search tree with root-insertion (simple
// splaying): allocates node objects, walks pointer chains — GC churn
// plus map checks, like the original Splay benchmark.
var N = %SIZE%;
var root = null;
var seedState = 7;

function rnd() {
    seedState = (seedState * 16807) % 2147483647;
    return seedState % 65536;
}

function makeNode(k) {
    return { key: k, left: null, right: null };
}

function insert(node, k) {
    if (node == null) { return makeNode(k); }
    var cur = node;
    while (true) {
        if (k < cur.key) {
            if (cur.left == null) { cur.left = makeNode(k); break; }
            cur = cur.left;
        } else if (k > cur.key) {
            if (cur.right == null) { cur.right = makeNode(k); break; }
            cur = cur.right;
        } else {
            break;
        }
    }
    return node;
}

function find(node, k) {
    var cur = node;
    var depth = 0;
    while (cur != null) {
        depth = depth + 1;
        if (k < cur.key) { cur = cur.left; }
        else if (k > cur.key) { cur = cur.right; }
        else { return depth; }
    }
    return -depth;
}

function bench() {
    root = null;
    seedState = 7;
    for (var i = 0; i < N; i++) {
        root = insert(root, rnd());
    }
    var acc = 0;
    seedState = 7;
    for (var j = 0; j < N; j++) {
        acc = (acc + find(root, rnd()) + 128) % 1048576;
    }
    return acc;
}

function verify() { return bench(); }
)JS";

const char *kPolyShapes = R"JS(
// Polymorphic shapes: a new object shape is introduced after the site
// has been optimized as monomorphic, forcing WrongMap deopts in normal
// execution flow — removing Type checks corrupts this benchmark.
var N = %SIZE%;
var items = [];
var phase = 0;

function makeA(v) { return { kind: 1, value: v }; }
function makeB(v) { return { tag: 0, kind: 2, value: v }; }
function makeC(v) { return { pad1: 0, pad2: 0, kind: 3, value: v }; }

function setup() {
    for (var i = 0; i < 64; i++) {
        items.push(makeA(i % 100));
    }
}
setup();

function bench() {
    phase = phase + 1;
    // After a while, start mixing in new shapes at the same load site.
    if (phase == 30) {
        for (var i = 0; i < 64; i = i + 3) { items[i] = makeB(i % 90); }
    }
    if (phase == 60) {
        for (var i = 1; i < 64; i = i + 3) { items[i] = makeC(i % 80); }
    }
    var s = 0;
    for (var r = 0; r < N; r++) {
        for (var i = 0; i < 64; i++) {
            var it = items[i];
            s = (s + it.value * it.kind) % 1048576;
        }
    }
    return s;
}

function verify() {
    var s = 0;
    for (var i = 0; i < 64; i++) {
        s = (s + items[i].value * items[i].kind * (i + 1)) % 1048576;
    }
    return s;
}
)JS";

const char *kKindShift = R"JS(
// Element-kind transition in normal flow: an SMI array receives a
// double mid-run. The optimized store speculates on the SMI-kind map
// and must deopt; with Type/SMI checks removed the store corrupts the
// array.
var N = %SIZE%;
var data = [];
var phase = 0;

function setup() {
    for (var i = 0; i < 256; i++) { data.push(i % 50); }
}
setup();

function bench() {
    phase = phase + 1;
    var scale = 1;
    if (phase == 40) {
        data[7] = 2.5;  // SMI -> Double transition, mid-run
    }
    var s = 0;
    for (var r = 0; r < N; r++) {
        for (var i = 0; i < 256; i++) {
            data[i] = data[i] + 1 - 1;
            s = s + data[i] * scale;
        }
        s = s % 1048576;
    }
    return Math.floor(s);
}

function verify() {
    var s = 0.0;
    for (var i = 0; i < 256; i++) { s = s + data[i] * (i + 1); }
    return Math.floor(s) % 1048576;
}
)JS";

} // namespace sources
} // namespace vspec
