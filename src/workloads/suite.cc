#include "workloads/suite.hh"

#include "workloads/sources.hh"

namespace vspec
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Sparse: return "sparse";
      case Category::Math: return "math";
      case Category::Crypto: return "crypto";
      case Category::String: return "string";
      case Category::Regex: return "regex";
      case Category::Parsing: return "parsing";
      case Category::Objects: return "objects";
    }
    return "?";
}

namespace
{

Workload
make(const char *name, const char *tag, Category cat, const char *src,
     u32 default_size, u32 gem5_size = 0)
{
    Workload w;
    w.name = name;
    w.tag = tag;
    w.category = cat;
    w.source = src;
    w.defaultSize = default_size;
    w.gem5Size = gem5_size != 0 ? gem5_size : default_size / 4;
    w.inGem5Subset = gem5_size != 0;
    return w;
}

std::vector<Workload>
buildSuite()
{
    using namespace sources;
    std::vector<Workload> s;

    // Sparse linear algebra (§II-C custom kernels). gem5 sizes are
    // small enough for the detailed models (§V).
    s.push_back(make("SPMV-CSR-FLOAT", "SPF", Category::Sparse,
                     kSpmvCsrFloat, 192));
    s.push_back(make("SPMV-CSR-INT", "SPI", Category::Sparse,
                     kSpmvCsrInt, 192));
    s.push_back(make("SPMV-CSR-SMI", "SPS", Category::Sparse,
                     kSpmvCsrSmi, 192, 96));
    s.push_back(make("SPMM", "SPM", Category::Sparse, kSpmm, 96, 48));
    s.push_back(make("MMUL", "MML", Category::Sparse, kMmul, 24, 16));
    s.push_back(make("IM2COL", "I2C", Category::Sparse, kIm2col, 28, 18));
    s.push_back(make("DP", "DP", Category::Sparse, kDotProduct,
                     2048, 1024));
    s.push_back(make("BLUR", "BLR", Category::Sparse, kBlur, 40, 24));

    // Mathematical.
    s.push_back(make("NAVIER-STOKES", "NS", Category::Math,
                     kNavierStokesLite, 36));
    s.push_back(make("NBODY", "NBD", Category::Math, kNbody, 24));
    s.push_back(make("FFT", "FFT", Category::Math, kFftLite, 256));
    s.push_back(make("PRIME-SIEVE", "PRM", Category::Math, kPrimeSieve,
                     2000));
    s.push_back(make("SPECTRAL-NORM", "SNR", Category::Math,
                     kSpectralNorm, 24));
    s.push_back(make("GROWING-SUM", "GRW", Category::Math, kGrowingSum,
                     70000));

    // Crypto.
    s.push_back(make("CRYP-MODEXP", "CRY", Category::Crypto, kCrypModexp,
                     20));
    s.push_back(make("AES2", "AE2", Category::Crypto, kAes2, 16, 8));
    s.push_back(make("HASH-FNV", "HSH", Category::Crypto, kHashFnv,
                     128, 64));
    s.push_back(make("CRC32", "CRC", Category::Crypto, kCrc32, 1024));

    // String manipulation.
    s.push_back(make("STR-BUILD", "STB", Category::String, kStrBuild,
                     400));
    s.push_back(make("STR-EQ", "STQ", Category::String, kStrEq, 96));
    s.push_back(make("BASE64", "B64", Category::String, kBase64, 600));
    s.push_back(make("TAGCASE", "TAG", Category::String, kTagCase, 96));

    // Regular expressions.
    s.push_back(make("REGEX-DNA", "RXD", Category::Regex, kRegexDna,
                     600));
    s.push_back(make("REGEX-LOG", "RXL", Category::Regex, kRegexLog, 64));
    s.push_back(make("REGEX-REDACT", "RXR", Category::Regex,
                     kRegexRedact, 48));

    // Language parsing.
    s.push_back(make("JSON-PARSE", "JSN", Category::Parsing, kJsonParse,
                     80));
    s.push_back(make("CODE-LOAD", "MICL", Category::Parsing, kCodeLoad,
                     64));
    s.push_back(make("CSV-PARSE", "CSV", Category::Parsing, kCsvParse,
                     96));

    // Object-heavy.
    s.push_back(make("RICHARDS", "RICH", Category::Objects,
                     kRichardsLite, 48));
    s.push_back(make("SPLAY", "SPL", Category::Objects, kSplayLite, 256));
    s.push_back(make("POLY-SHAPES", "PLY", Category::Objects,
                     kPolyShapes, 12));
    s.push_back(make("KIND-SHIFT", "KND", Category::Objects, kKindShift,
                     10));

    return s;
}

} // namespace

const std::vector<Workload> &
suite()
{
    static const std::vector<Workload> s = buildSuite();
    return s;
}

std::vector<const Workload *>
gem5Subset()
{
    std::vector<const Workload *> out;
    for (const Workload &w : suite()) {
        if (w.inGem5Subset)
            out.push_back(&w);
    }
    return out;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : suite()) {
        if (w.name == name || w.tag == name)
            return &w;
    }
    return nullptr;
}

std::string
instantiate(const Workload &w, u32 size)
{
    std::string out = w.source;
    const std::string token = "%SIZE%";
    size_t at;
    std::string repl = std::to_string(size != 0 ? size : w.defaultSize);
    while ((at = out.find(token)) != std::string::npos)
        out.replace(at, token.size(), repl);
    return out;
}

} // namespace vspec
