/**
 * @file
 * Quickstart: load a MiniJS program, run a hot function until it tiers
 * up to optimized code, and print engine statistics — compilations,
 * deoptimizations, check counts in the generated code, and the
 * modeled cycle split between the interpreter and the simulated CPU.
 */

#include <cstdio>

#include "runtime/engine.hh"

using namespace vspec;

static const char *kProgram = R"JS(
function sumTo(n) {
    var s = 0;
    for (var i = 0; i < n; i++) {
        s = s + i;
    }
    return s;
}

function bench() {
    return sumTo(10000);
}
)JS";

int
main()
{
    EngineConfig cfg;
    cfg.isa = IsaFlavour::Arm64Like;
    cfg.samplerEnabled = true;
    Engine engine(cfg);

    engine.loadProgram(kProgram);

    printf("iter  result     cycles(delta)\n");
    for (int i = 0; i < 10; i++) {
        Cycles before = engine.totalCycles();
        Value r = engine.call("bench");
        Cycles after = engine.totalCycles();
        printf("%4d  %-9s  %llu\n", i, engine.vm.display(r).c_str(),
               static_cast<unsigned long long>(after - before));
    }

    printf("\ncompilations: %llu\n",
           static_cast<unsigned long long>(engine.compilations));
    printf("deopts: eager=%llu soft=%llu lazy=%llu\n",
           static_cast<unsigned long long>(engine.eagerDeopts),
           static_cast<unsigned long long>(engine.softDeopts),
           static_cast<unsigned long long>(engine.lazyDeopts));
    printf("interpreter cycles: %llu\n",
           static_cast<unsigned long long>(engine.interpreterCycles));
    printf("simulated JIT cycles: %llu\n",
           static_cast<unsigned long long>(engine.timing->cycles()));

    FunctionId fid = engine.functions.idOf("sumTo");
    const FunctionInfo &fn = engine.functions.at(fid);
    if (fn.hasCode()) {
        const CodeObject &code = *engine.codeObjects[fn.codeId];
        printf("\noptimized code for sumTo: %zu instructions, "
               "%zu checks, %u check-instructions (%.1f per 100)\n",
               code.code.size(), code.checks.size(),
               code.totalCheckInstructions(),
               100.0 * code.totalCheckInstructions() / code.code.size());
        printf("%s\n", code.disassemble().c_str());
    } else {
        printf("\nsumTo was not optimized\n");
    }
    return 0;
}
