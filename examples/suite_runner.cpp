/**
 * @file
 * Suite runner / validator: executes every workload in the suite on
 * both ISA flavours and reports per-workload timing, compilation and
 * deopt statistics, plus interp-vs-JIT checksum agreement. Useful both
 * as a smoke test of the whole system and as a usage example of the
 * harness API.
 */

#include <cstdio>
#include <cstring>

#include "harness/experiment.hh"

using namespace vspec;

int
main(int argc, char **argv)
{
    u32 iters = 60;
    const char *only = nullptr;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--iters=", 8) == 0)
            iters = static_cast<u32>(std::atoi(argv[i] + 8));
        else
            only = argv[i];
    }

    printf("%-16s %-8s %9s %9s %7s %6s %6s %6s  %s\n", "workload", "cat",
           "interp/it", "jit/it", "speedup", "comps", "deopts", "chk%",
           "status");

    int failures = 0;
    for (const Workload &w : suite()) {
        if (only != nullptr && w.name != only && w.tag != only)
            continue;

        // Interpreter-only reference at the same iteration count
        // (several workloads carry state across iterations).
        RunConfig interp_rc;
        interp_rc.iterations = iters;
        interp_rc.samplerEnabled = false;
        interp_rc.enableOptimization = false;
        RunOutcome ref = runWorkload(w, interp_rc, nullptr);

        RunConfig rc;
        rc.iterations = iters;
        RunOutcome out = runWorkload(w, rc, &ref.checksum);

        double interp_it = ref.steadyStateCycles();
        double jit_it = out.steadyStateCycles();
        bool ok = out.valid;
        if (!ok)
            failures++;
        printf("%-16s %-8s %9.0f %9.0f %6.1fx %6llu %6llu %5.1f%%  %s%s\n",
               w.name.c_str(), categoryName(w.category), interp_it, jit_it,
               jit_it > 0 ? interp_it / jit_it : 0.0,
               static_cast<unsigned long long>(out.compilations),
               static_cast<unsigned long long>(out.totalDeopts),
               out.staticCheckFreqPer100,
               ok ? "ok" : "MISMATCH ",
               ok ? "" : out.error.c_str());
    }
    if (failures > 0) {
        printf("\n%d workload(s) failed\n", failures);
        return 1;
    }
    printf("\nall workloads validated\n");
    return 0;
}
