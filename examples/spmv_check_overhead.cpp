/**
 * @file
 * Domain example 1 — the paper's motivating sparse-kernel comparison:
 * run SpMV-CSR in its float, large-int and SMI variants, measure the
 * check overhead of each with both methodologies (PC sampling and
 * check removal), and show that the SMI variant is the slowest *with*
 * checks even though 31-bit integer arithmetic is conceptually the
 * cheapest (§III-B.3: overflow checks in SMI arithmetic).
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace vspec;

int
main(int argc, char **argv)
{
    u32 iters = 40;
    if (argc > 1)
        iters = static_cast<u32>(std::atoi(argv[1]));

    printf("SpMV-CSR: the cost of speculation across value "
           "representations\n");
    printf("=============================================================="
           "==\n");
    printf("%-16s %14s %14s %12s %12s\n", "variant", "cycles/iter",
           "no-checks", "overhead", "sampling-est");

    double smi_cycles = 0, float_cycles = 0;
    for (const char *name :
         {"SPMV-CSR-FLOAT", "SPMV-CSR-INT", "SPMV-CSR-SMI"}) {
        const Workload *w = findWorkload(name);
        RunConfig rc;
        rc.iterations = iters;
        RunOutcome with = runWorkload(*w, rc, nullptr);
        RunConfig rm = RunConfig::withAllChecksRemoved(rc);
        rm.samplerEnabled = false;
        RunOutcome without = runWorkload(*w, rm, nullptr);

        double ovh = with.meanCycles() > 0
            ? 100.0 * (with.meanCycles() - without.meanCycles())
              / with.meanCycles()
            : 0.0;
        printf("%-16s %14.0f %14.0f %10.1f%% %10.1f%%\n", name,
               with.steadyStateCycles(), without.steadyStateCycles(), ovh,
               100.0 * with.window.overheadFraction());
        if (std::string(name) == "SPMV-CSR-SMI")
            smi_cycles = with.steadyStateCycles();
        if (std::string(name) == "SPMV-CSR-FLOAT")
            float_cycles = with.steadyStateCycles();
    }

    printf("\nSMI vs FLOAT with checks: %.2fx  (paper: SMI ~20%% slower "
           "despite cheaper arithmetic, because of the\n"
           "overflow and Not-a-SMI checks SMI arithmetic needs)\n",
           float_cycles > 0 ? smi_cycles / float_cycles : 0.0);
    return 0;
}
