/**
 * @file
 * Domain example 3 — a guided tour of the deoptimization machinery:
 * provoke each category (eager / soft / lazy) in a small program and
 * print the engine's deopt log with reasons, categories and timing,
 * mirroring the taxonomy of §II-B.
 */

#include <cstdio>

#include "runtime/engine.hh"

using namespace vspec;

static const char *kProgram = R"JS(
var factor = 3;
var things = [];
var total = 0;

function makeThin(v) { return { value: v }; }
function makeWide(v) { return { pad: 0, extra: 0, value: v }; }

function setup() {
    for (var i = 0; i < 12; i++) { things.push(makeThin(i + 1)); }
}
setup();

function hotSum() {
    var s = 0;
    for (var i = 0; i < 12; i++) { s = s + things[i].value * factor; }
    return s;
}

function bench() { return hotSum(); }

function growTotal() {
    // Crosses the SMI boundary after tier-up -> eager Overflow deopt.
    for (var i = 0; i < 2000; i++) { total = total + 400000; }
    return total % 9973;
}

function reshape() { things[5] = makeWide(600); }   // eager WrongMap
function retune() { factor = 4; }                   // lazy (const cell)
)JS";

int
main()
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(kProgram);

    printf("1. warm up and optimize hotSum()...\n");
    for (int i = 0; i < 4; i++)
        engine.call("bench");
    printf("   bench() = %s, compilations = %llu\n",
           engine.vm.display(engine.call("bench")).c_str(),
           static_cast<unsigned long long>(engine.compilations));

    printf("\n2. lazy deopt: the embedded constant global 'factor' is "
           "written (code invalidated, discarded at next entry)...\n");
    engine.call("retune");
    printf("   bench() = %s\n",
           engine.vm.display(engine.call("bench")).c_str());
    for (int i = 0; i < 3; i++)
        engine.call("bench");  // re-warm and re-optimize

    printf("\n3. eager deopt #1: a wide object shape appears "
           "(WrongMap)...\n");
    engine.call("reshape");
    printf("   bench() = %s\n",
           engine.vm.display(engine.call("bench")).c_str());

    printf("\n4. eager deopt #2: an accumulator overflows the 31-bit "
           "SMI range...\n");
    for (int i = 0; i < 4; i++)
        engine.call("growTotal");
    printf("   growTotal() = %s\n",
           engine.vm.display(engine.call("growTotal")).c_str());

    printf("\ndeopt log (%zu events: eager=%llu soft=%llu lazy=%llu):\n",
           engine.deoptLog.size(),
           static_cast<unsigned long long>(engine.eagerDeopts),
           static_cast<unsigned long long>(engine.softDeopts),
           static_cast<unsigned long long>(engine.lazyDeopts));
    for (const DeoptRecord &d : engine.deoptLog) {
        printf("  @%-10llu %-12s %-28s at %s:%d\n",
               static_cast<unsigned long long>(d.atCycle),
               deoptCategoryName(d.category), deoptReasonName(d.reason),
               engine.functions.at(d.function).name.c_str(), d.pos.line);
    }
    printf("\n§II-B: eager = failed speculation in optimized code; "
           "lazy = code invalidated from outside,\n"
           "discarded at next entry; soft = compiled before feedback "
           "existed.\n");
    return 0;
}
