/**
 * @file
 * Domain example 2 — §V end to end: compile a small SMI kernel with
 * and without the jsldr(u)smi extension, print both machine-code
 * listings side by side (showing the fused load replacing the
 * ldr/tst/b.ne/asr pattern of Fig. 3 -> Fig. 11), then run both on a
 * detailed CPU model and report the speedup, and finally poison the
 * array to demonstrate the commit-phase bailout (REG_RE path).
 */

#include <cstdio>

#include "runtime/engine.hh"
#include "workloads/suite.hh"

using namespace vspec;

static const char *kKernel = R"JS(
var a = [];
function setup() { for (var i = 0; i < 128; i++) { a.push(i % 31 + 1); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 128; i++) { s = (s + a[i]) % 65536; }
    return s;
}
function poison() { a[64] = 1.5; }
)JS";

static void
showCode(Engine &engine, const char *title)
{
    FunctionId fid = engine.functions.idOf("bench");
    const FunctionInfo &fn = engine.functions.at(fid);
    if (!fn.hasCode()) {
        printf("%s: not compiled\n", title);
        return;
    }
    const CodeObject &code = *engine.codeObjects[fn.codeId];
    printf("--- %s: %zu instructions, %zu checks ---\n", title,
           code.code.size(), code.checks.size());
    printf("%s\n", code.disassemble().c_str());
}

int
main()
{
    // 1. Side-by-side code.
    EngineConfig def_cfg;
    def_cfg.cpu = CpuConfig::o3Kpg();
    Engine def_engine(def_cfg);
    def_engine.loadProgram(kKernel);
    for (int i = 0; i < 3; i++)
        def_engine.call("bench");

    EngineConfig ext_cfg = def_cfg;
    ext_cfg.smiLoadExtension = true;
    Engine ext_engine(ext_cfg);
    ext_engine.loadProgram(kKernel);
    for (int i = 0; i < 3; i++)
        ext_engine.call("bench");

    showCode(def_engine, "default ARM64-like ISA (Fig. 3 pattern)");
    showCode(ext_engine, "SMI-extended ISA (Fig. 11: jsldrsmi + MSR "
                         "REG_BA prologue)");

    // 2. Timing on the detailed model.
    auto steady = [](Engine &e) {
        for (int i = 0; i < 6; i++)
            e.call("bench");
        Cycles t0 = e.totalCycles();
        e.call("bench");
        return static_cast<double>(e.totalCycles() - t0);
    };
    double d = steady(def_engine);
    double x = steady(ext_engine);
    printf("steady-state cycles/iteration on %s: default=%.0f "
           "extended=%.0f (%.1f%% faster)\n",
           def_cfg.cpu.name.c_str(), d, x, 100.0 * (d - x) / d);

    // 3. The bailout path: a double appears where an SMI was promised.
    u64 deopts_before = ext_engine.eagerDeopts;
    ext_engine.call("poison");
    Value r = ext_engine.call("bench");
    printf("\nafter poisoning a[64] with 1.5: bench() = %s "
           "(eager deopts %llu -> %llu)\n",
           ext_engine.vm.display(r).c_str(),
           static_cast<unsigned long long>(deopts_before),
           static_cast<unsigned long long>(ext_engine.eagerDeopts));
    printf("the failed jsldrsmi wrote REG_PC/REG_RE and raised the "
           "commit-phase bailout exception (§V-A).\n");
    return 0;
}
