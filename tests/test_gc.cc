/** @file Unit tests for the mark-sweep garbage collector. */

#include <gtest/gtest.h>

#include "vm/gc.hh"

using namespace vspec;

namespace
{

class VectorRoots : public RootProvider
{
  public:
    std::vector<Value> roots;
    void
    forEachRoot(const std::function<void(Value)> &visit) override
    {
        for (Value v : roots)
            visit(v);
    }
};

} // namespace

class GcTest : public ::testing::Test
{
  protected:
    GcTest() : ctx(8u << 20), gc(ctx)
    {
        ctx.heap.gc = &gc;
        gc.addRootProvider(&roots);
    }

    VMContext ctx;
    GarbageCollector gc;
    VectorRoots roots;
};

TEST_F(GcTest, UnreachableObjectsAreReclaimed)
{
    Addr dead = ctx.newHeapNumber(1.0);
    (void)dead;
    Addr live = ctx.newHeapNumber(2.0);
    roots.roots.push_back(Value::heap(live));
    u64 freed = gc.collect();
    EXPECT_GT(freed, 0u);
    // The live number survives with its payload intact.
    EXPECT_DOUBLE_EQ(ctx.numberOf(Value::heap(live)), 2.0);
}

TEST_F(GcTest, ReachableThroughObjectProperties)
{
    Addr obj = ctx.newObject();
    roots.roots.push_back(Value::heap(obj));
    Addr s = ctx.newString("payload");
    ctx.setProperty(obj, ctx.names.intern("p"), Value::heap(s));
    gc.collect();
    EXPECT_EQ(ctx.stringOf(
                  ctx.getProperty(obj, ctx.names.intern("p")).asAddr()),
              "payload");
}

TEST_F(GcTest, ReachableThroughArrayElements)
{
    Addr arr = ctx.newArray(ElementKind::Tagged, 0);
    roots.roots.push_back(Value::heap(arr));
    for (int i = 0; i < 20; i++)
        ctx.arraySet(arr, i, Value::heap(ctx.newString("s" +
                                                       std::to_string(i))));
    gc.collect();
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(ctx.stringOf(ctx.arrayGet(arr, i).asAddr()),
                  "s" + std::to_string(i));
}

TEST_F(GcTest, ImmortalObjectsAreNeverCollected)
{
    Addr s = ctx.internString("immortal");
    gc.collect();  // no roots reference it
    EXPECT_EQ(ctx.stringOf(s), "immortal");
    EXPECT_EQ(ctx.undefinedValue, ctx.undefinedValue);
}

TEST_F(GcTest, FreedMemoryIsReused)
{
    u32 used_before = ctx.heap.bytesInUse();
    for (int round = 0; round < 50; round++) {
        for (int i = 0; i < 100; i++)
            ctx.newHeapNumber(i);
        gc.collect();
    }
    // Bump pointer growth is bounded: free-listed blocks get reused.
    EXPECT_LT(ctx.heap.bytesInUse(), used_before + 200 * 16 + 4096);
}

TEST_F(GcTest, AllocationTriggersCollection)
{
    // Fill the mortal region with garbage; allocation must survive by
    // collecting instead of panicking.
    VMContext small(4u << 20);
    GarbageCollector small_gc(small);
    small.heap.gc = &small_gc;
    VectorRoots no_roots;
    small_gc.addRootProvider(&no_roots);
    for (int i = 0; i < 400000; i++)
        small.newHeapNumber(static_cast<double>(i));
    EXPECT_GE(small.heap.stats().gcCount, 1u);
}

TEST_F(GcTest, TempRootScopePinsValues)
{
    Value v = Value::heap(ctx.newString("pinned"));
    {
        TempRootScope scope(&gc);
        scope.pin(v);
        gc.collect();
        EXPECT_EQ(ctx.stringOf(v.asAddr()), "pinned");
    }
    // After the scope ends it may be reclaimed on the next cycle; we
    // only check that the scope unwound without error.
    SUCCEED();
}

TEST_F(GcTest, CollectionCountsTracked)
{
    u64 before = gc.collections();
    gc.collect();
    gc.collect();
    EXPECT_EQ(gc.collections(), before + 2);
}
