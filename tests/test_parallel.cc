/**
 * @file
 * vpar tests: the scheduling substrate (TaskPool / parallelFor), the
 * persistent reference/safe-set cache, the predecode fast path, and the
 * end-to-end determinism contract — a parallel bench slice must be
 * byte-identical to its sequential run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "harness/parallel.hh"
#include "support/sched.hh"

using namespace vspec;

namespace
{

/** A throwaway cache directory, removed on scope exit. */
struct TempCacheDir
{
    std::string path;

    TempCacheDir()
    {
        char tmpl[] = "/tmp/vspec-test-cache-XXXXXX";
        char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d != nullptr ? d : "";
    }

    ~TempCacheDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
};

} // namespace

// ---------------------------------------------------------------------
// Scheduling substrate
// ---------------------------------------------------------------------

TEST(Sched, ParseJobsValidation)
{
    EXPECT_EQ(sched::parseJobs("4"), 4u);
    EXPECT_EQ(sched::parseJobs("1"), 1u);
    EXPECT_EQ(sched::parseJobs("0"), 0u);
    EXPECT_EQ(sched::parseJobs(""), 0u);
    EXPECT_EQ(sched::parseJobs("abc"), 0u);
    EXPECT_EQ(sched::parseJobs("4x"), 0u);
    EXPECT_EQ(sched::parseJobs("-2"), 0u);
    EXPECT_EQ(sched::parseJobs("99999"), 0u);
    EXPECT_GE(sched::hardwareJobs(), 1u);
    EXPECT_GE(sched::defaultJobs(), 1u);
}

TEST(Sched, ParallelForCoversEveryIndexOnce)
{
    for (u32 jobs : {1u, 2u, 4u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        sched::parallelFor(jobs, hits.size(),
                           [&](size_t i) { hits[i]++; });
        for (size_t i = 0; i < hits.size(); i++)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(Sched, ParallelForInlineWhenSingleJob)
{
    // jobs == 1 must execute in index order on the calling thread.
    std::vector<size_t> order;
    auto tid = std::this_thread::get_id();
    bool same_thread = true;
    sched::parallelFor(1, 16, [&](size_t i) {
        order.push_back(i);
        same_thread &= std::this_thread::get_id() == tid;
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i);
    EXPECT_TRUE(same_thread);
}

TEST(Sched, ParallelForRethrowsLowestIndexError)
{
    for (u32 jobs : {1u, 4u}) {
        try {
            sched::parallelFor(jobs, 64, [&](size_t i) {
                if (i == 7 || i == 23)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 7");
        }
    }
}

TEST(Sched, WaitCountsSuppressedErrors)
{
    // Two concurrent throwing tasks: wait() rethrows exactly one (the
    // earliest by submission order) and the other must be visible as a
    // suppressed error, never silently discarded.
    for (u32 jobs : {1u, 4u}) {
        sched::TaskPool pool(jobs);
        pool.submit([] { throw std::runtime_error("first"); });
        pool.submit([] { throw std::runtime_error("second"); });
        try {
            pool.wait();
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first");
        }
        EXPECT_EQ(pool.capturedErrors(), 2u);
        EXPECT_EQ(pool.suppressedErrors(), 1u);
        // A clean follow-up round adds nothing to either count.
        pool.submit([] {});
        pool.wait();
        EXPECT_EQ(pool.capturedErrors(), 2u);
        EXPECT_EQ(pool.suppressedErrors(), 1u);
    }
}

TEST(Sched, ParallelForReportsSuppressedErrors)
{
    for (u32 jobs : {1u, 4u}) {
        u64 suppressed = 1234;  // must be overwritten even on success
        sched::parallelFor(jobs, 8, [](size_t) {}, &suppressed);
        EXPECT_EQ(suppressed, 0u);

        try {
            sched::parallelFor(jobs, 64, [&](size_t i) {
                if (i == 7 || i == 23 || i == 41)
                    throw std::runtime_error("boom "
                                             + std::to_string(i));
            }, &suppressed);
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 7");
        }
        EXPECT_EQ(suppressed, 2u) << "jobs=" << jobs;
    }
}

TEST(Sched, TaskPoolStress)
{
    // Many small racing tasks; the pool must run all of them exactly
    // once and drain cleanly. (The TSan CI leg gives this teeth.)
    sched::TaskPool pool(4);
    std::atomic<u64> sum{0};
    constexpr u64 kTasks = 2000;
    for (u64 i = 0; i < kTasks; i++)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
    // Pool is reusable after a wait().
    pool.submit([&sum] { sum += 1; });
    pool.wait();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2 + 1);
}

// ---------------------------------------------------------------------
// Persistent cache
// ---------------------------------------------------------------------

TEST(PersistentCache, RoundTripAndReopen)
{
    TempCacheDir tmp;
    ASSERT_FALSE(tmp.path.empty());
    {
        par::PersistentCache cache(tmp.path);
        ASSERT_TRUE(cache.enabled());
        std::string v;
        EXPECT_FALSE(cache.get("ref", 0x1234, v));
        cache.put("ref", 0x1234, "checksum-value");
        ASSERT_TRUE(cache.get("ref", 0x1234, v));
        EXPECT_EQ(v, "checksum-value");
    }
    // A fresh cache over the same directory serves the entry from disk.
    par::PersistentCache reopened(tmp.path);
    std::string v;
    ASSERT_TRUE(reopened.get("ref", 0x1234, v));
    EXPECT_EQ(v, "checksum-value");
    // Distinct kinds and keys do not collide.
    EXPECT_FALSE(reopened.get("safeset", 0x1234, v));
    EXPECT_FALSE(reopened.get("ref", 0x1235, v));
    // clear() drops disk and memory.
    reopened.clear();
    EXPECT_FALSE(reopened.get("ref", 0x1234, v));
}

TEST(PersistentCache, DisabledModes)
{
    par::PersistentCache off("");
    EXPECT_FALSE(off.enabled());
    std::string v;
    EXPECT_FALSE(off.get("ref", 1, v));
    // The in-process memo still works without a directory.
    off.put("ref", 1, "x");
    EXPECT_TRUE(off.get("ref", 1, v));

    // --no-cache stops the disk layer but keeps the in-process memo
    // (deterministic either way).
    TempCacheDir tmp;
    par::PersistentCache cache(tmp.path);
    cache.setDiskEnabled(false);
    EXPECT_FALSE(cache.enabled());
    cache.put("ref", 1, "x");
    EXPECT_TRUE(cache.get("ref", 1, v));
    par::PersistentCache fresh(tmp.path);
    EXPECT_FALSE(fresh.get("ref", 1, v)) << "disabled put reached disk";
}

TEST(PersistentCache, ValuesSurviveConcurrentWriters)
{
    TempCacheDir tmp;
    par::PersistentCache cache(tmp.path);
    sched::parallelFor(4, 64, [&](size_t i) {
        // All writers store the same value per key — like N bench
        // processes caching the same deterministic result.
        cache.put("ref", i % 8, "v" + std::to_string(i % 8));
    });
    for (u64 k = 0; k < 8; k++) {
        std::string v;
        ASSERT_TRUE(cache.get("ref", k, v));
        EXPECT_EQ(v, "v" + std::to_string(k));
    }
}

TEST(PersistentCache, FingerprintSensitivity)
{
    const Workload *w = findWorkload("DP");
    RunConfig a;
    RunConfig b = a;
    EXPECT_EQ(par::runConfigFingerprint(a), par::runConfigFingerprint(b));
    b.isa = IsaFlavour::X64Like;
    EXPECT_NE(par::runConfigFingerprint(a), par::runConfigFingerprint(b));
    RunConfig c = a;
    c.seed += 1;
    EXPECT_NE(par::runConfigFingerprint(a), par::runConfigFingerprint(c));
    // Key includes the probe iteration count and the workload.
    EXPECT_NE(par::safeSetCacheKey(*w, a, 20),
              par::safeSetCacheKey(*w, a, 40));
    const Workload *w2 = findWorkload("HASH-FNV");
    ASSERT_NE(w2, nullptr);
    EXPECT_NE(par::safeSetCacheKey(*w, a, 20),
              par::safeSetCacheKey(*w2, a, 20));
    EXPECT_NE(par::referenceCacheKey(*w, 128, 10),
              par::referenceCacheKey(*w, 256, 10));
}

TEST(PersistentCache, WarmSafeSetSearchIsDeterministic)
{
    // Cold vs warm must produce the same bytes: the memoized set equals
    // a fresh search, and the reference checksum string is stable.
    const Workload *w = findWorkload("GROWING-SUM");
    RunConfig rc;
    rc.iterations = 30;
    auto cold = findSafeRemovalSet(*w, rc, 30);
    auto warm = findSafeRemovalSet(*w, rc, 30);
    EXPECT_EQ(cold, warm);
    const std::string &r1 = referenceChecksum(*w, w->defaultSize, 12);
    const std::string &r2 = referenceChecksum(*w, w->defaultSize, 12);
    EXPECT_EQ(r1, r2);
    EXPECT_FALSE(r1.empty());
}

// ---------------------------------------------------------------------
// Predecode fast path
// ---------------------------------------------------------------------

TEST(Predecode, CyclesBitIdenticalWithAndWithout)
{
    for (const char *name : {"DP", "GROWING-SUM", "STR-BUILD"}) {
        const Workload *w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        RunConfig on;
        on.iterations = 12;
        on.size = 128;
        on.predecode = true;
        RunConfig off = on;
        off.predecode = false;
        RunOutcome a = runWorkload(*w, on, nullptr);
        RunOutcome b = runWorkload(*w, off, nullptr);
        ASSERT_TRUE(a.completed) << a.error;
        ASSERT_TRUE(b.completed) << b.error;
        EXPECT_EQ(a.checksum, b.checksum) << name;
        EXPECT_EQ(a.iterationCycles, b.iterationCycles) << name;
        EXPECT_EQ(a.totalCycles, b.totalCycles) << name;
        EXPECT_EQ(a.sim.instructions, b.sim.instructions) << name;
        EXPECT_EQ(a.sim.mispredicts, b.sim.mispredicts) << name;
    }
}

TEST(Predecode, VerifiedUnderVerifyLevel)
{
    // With verification enabled the engine cross-checks every
    // predecoded CommitInfo against a freshly decoded one; a run
    // completing under it means the tables agree.
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 6;
    rc.size = 64;
    EngineConfig cfg = engineConfigFor(rc);
    cfg.passes.verifyLevel = VerifyLevel::Passes;
    Engine engine(cfg);
    engine.loadProgram(instantiate(*w, 64));
    for (u32 i = 0; i < rc.iterations; i++)
        engine.call("bench");
    EXPECT_GT(engine.totalCycles(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end determinism: parallel == sequential, byte for byte
// ---------------------------------------------------------------------

TEST(Parallel, BenchSliceByteIdenticalAcrossJobCounts)
{
    // A miniature fig01-style slice: render each workload's row into a
    // string cell, then concatenate in cell order. The bytes must not
    // depend on the job count.
    std::vector<const Workload *> ws;
    for (const Workload &w : suite()) {
        ws.push_back(&w);
        if (ws.size() == 6)
            break;
    }
    auto render = [&](u32 jobs) {
        auto cells = par::mapWorkloads<std::string>(
            jobs, ws, [&](const Workload &w) {
                RunConfig rc;
                rc.iterations = 8;
                rc.samplerEnabled = false;
                RunOutcome o = runWorkload(w, rc, nullptr);
                if (!o.completed)
                    return par::strprintf("%-14s failed\n",
                                          w.name.c_str());
                return par::strprintf(
                    "%-14s %12.1f %10llu %s\n", w.name.c_str(),
                    o.meanCycles(),
                    static_cast<unsigned long long>(o.sim.instructions),
                    o.checksum.c_str());
            });
        std::string out;
        for (const std::string &c : cells)
            out += c;
        return out;
    };
    std::string seq = render(1);
    std::string par2 = render(2);
    std::string par8 = render(8);
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, par2);
    EXPECT_EQ(seq, par8);
}

TEST(Parallel, CellCounterTracksRuns)
{
    par::resetHarnessCounters();
    par::mapCells<int>(2, 10, [](size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(par::harnessCounter(par::HarnessCounter::CellsRun), 10u);
    std::string json = par::harnessCountersJson();
    EXPECT_NE(json.find("cells_run"), std::string::npos);
}

TEST(Parallel, MapCellsBumpsSuppressedErrorCounter)
{
    par::resetHarnessCounters();
    for (u32 jobs : {1u, 4u}) {
        try {
            par::mapCells<int>(jobs, 32, [](size_t i) -> int {
                if (i == 3 || i == 17)
                    throw std::runtime_error("cell "
                                             + std::to_string(i));
                return static_cast<int>(i);
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "cell 3");
        }
    }
    // One suppressed failure per round, both job counts.
    EXPECT_EQ(par::harnessCounter(
                  par::HarnessCounter::TaskErrorsSuppressed),
              2u);
    std::string json = par::harnessCountersJson();
    EXPECT_NE(json.find("task_errors_suppressed"), std::string::npos);
}

TEST(Parallel, StrprintfFormats)
{
    EXPECT_EQ(par::strprintf("%s-%04d", "x", 7), "x-0007");
    // Longer than any static buffer guess.
    std::string big(500, 'a');
    EXPECT_EQ(par::strprintf("%s", big.c_str()), big);
}
