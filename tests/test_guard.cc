/** @file vguard tests: structured EngineError propagation and safe
 *  unwinding (the engine stays usable after every catch), resource
 *  guards (OOM-with-GC-retry, invoke depth, fuel, simulated stack),
 *  and the deterministic fault-injection layer (GC stress, alloc-fail,
 *  compile-fail, spurious deopt). The degradation invariant under
 *  test: every injected fault either preserves results bit-identically
 *  or surfaces a structured EngineError — never a crash or a silent
 *  wrong answer. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"
#include "runtime/builtins.hh"
#include "runtime/engine.hh"
#include "runtime/guard.hh"
#include "runtime/regex_lite.hh"
#include "sim/machine.hh"
#include "support/fuzz_gen.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

EngineConfig
quietConfig()
{
    EngineConfig cfg;
    cfg.samplerEnabled = false;
    cfg.faults = FaultConfig{};  // isolate tests from VSPEC_FAULT
    return cfg;
}

/** Final checksum of @p source after @p iterations bench() calls. */
std::string
runChecksum(const std::string &source, EngineConfig cfg, u32 iterations)
{
    Engine engine(cfg);
    engine.loadProgram(source);
    for (u32 i = 0; i < iterations; i++)
        engine.call("bench");
    return engine.vm.display(engine.call("verify"));
}

const char *const kLoopProgram = R"(
var total = 0;
function work(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) { s = (s + i * 3) | 0; }
  return s;
}
function bench() { total = (total + work(500)) | 0; }
function verify() { return total; }
)";

} // namespace

// ---------------------------------------------------------------------
// EngineError basics
// ---------------------------------------------------------------------

TEST(EngineErrorTest, KindNamesAreStable)
{
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::OutOfMemory),
                 "OutOfMemory");
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::StackOverflow),
                 "StackOverflow");
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::FuelExhausted),
                 "FuelExhausted");
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::CompileFailed),
                 "CompileFailed");
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::TypeError),
                 "TypeError");
    EXPECT_STREQ(engineErrorKindName(EngineErrorKind::RegexBudget),
                 "RegexBudget");
}

TEST(EngineErrorTest, WhatIncludesKindAndContext)
{
    EngineError plain(EngineErrorKind::TypeError, "boom");
    EXPECT_FALSE(plain.hasContext());
    EXPECT_NE(std::string(plain.what()).find("TypeError"),
              std::string::npos);
    EXPECT_NE(std::string(plain.what()).find("boom"), std::string::npos);

    EngineError stamped = plain.withContext(7, 42, 1234);
    EXPECT_TRUE(stamped.hasContext());
    EXPECT_EQ(stamped.function, 7u);
    EXPECT_EQ(stamped.bytecodeOffset, 42u);
    EXPECT_EQ(stamped.cycle, 1234u);
    EXPECT_NE(std::string(stamped.what()).find("fn=7"), std::string::npos);

    // The innermost frame wins: re-stamping is a no-op.
    EngineError again = stamped.withContext(9, 99, 9999);
    EXPECT_EQ(again.function, 7u);
}

TEST(EngineErrorTest, IsACatchableRuntimeError)
{
    // Existing catch sites use std::runtime_error / std::exception;
    // EngineError must flow through them.
    try {
        throw EngineError(EngineErrorKind::OutOfMemory, "x");
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("OutOfMemory"),
                  std::string::npos);
        return;
    }
    FAIL() << "EngineError did not match std::runtime_error";
}

// ---------------------------------------------------------------------
// FaultConfig parsing
// ---------------------------------------------------------------------

TEST(FaultConfigTest, ParsesAllSites)
{
    FaultConfig c = FaultConfig::parse(
        "alloc-fail-at=5, gc-every=3 ,compile-fail-at=2,"
        "spurious-deopt-at=7,alloc-fail-every=900,compile-fail-every=4");
    EXPECT_EQ(c.allocFailAt, 5u);
    EXPECT_EQ(c.allocFailEvery, 900u);
    EXPECT_EQ(c.gcEveryNAllocs, 3u);
    EXPECT_EQ(c.compileFailAt, 2u);
    EXPECT_EQ(c.compileFailEvery, 4u);
    EXPECT_EQ(c.spuriousDeoptAt, 7u);
    EXPECT_TRUE(c.any());
    EXPECT_FALSE(FaultConfig::none().any());
}

TEST(FaultConfigTest, RecurringSchedulesKeepFiring)
{
    FaultConfig cfg;
    cfg.compileFailEvery = 2;
    cfg.allocFailEvery = 3;
    FaultInjector inj(cfg);
    // Compiles 2, 4, 6 fail; 1, 3, 5 succeed.
    EXPECT_FALSE(inj.onCompile());
    EXPECT_TRUE(inj.onCompile());
    EXPECT_FALSE(inj.onCompile());
    EXPECT_TRUE(inj.onCompile());
    EXPECT_FALSE(inj.onCompile());
    EXPECT_TRUE(inj.onCompile());
    // Allocations 3 and 6 fail.
    EXPECT_EQ(inj.onAllocation(), AllocFault::None);
    EXPECT_EQ(inj.onAllocation(), AllocFault::None);
    EXPECT_EQ(inj.onAllocation(), AllocFault::Fail);
    EXPECT_EQ(inj.onAllocation(), AllocFault::None);
    EXPECT_EQ(inj.onAllocation(), AllocFault::None);
    EXPECT_EQ(inj.onAllocation(), AllocFault::Fail);
    EXPECT_EQ(inj.injected, 5u);  // 3 compile faults + 2 alloc faults
}

TEST(FaultConfigTest, SetFaultConfigOverridesPerEngine)
{
    // A clean engine gains a fault schedule post-construction: the
    // vserve per-isolate override path. Thresholds are relative to the
    // engine's lifetime ordinals, so read the current counter first.
    Engine engine(quietConfig());
    engine.loadProgram(kLoopProgram);
    engine.call("bench");

    FaultConfig cfg;
    cfg.allocFailAt = engine.faults.allocations + 1;
    engine.setFaultConfig(cfg);
    EXPECT_THROW(engine.loadProgram("var x = [1, 2, 3];"), EngineError);
    EXPECT_EQ(engine.faults.injected, 1u);

    // Clearing restores normal service on the same engine.
    engine.setFaultConfig(FaultConfig::none());
    EXPECT_FALSE(engine.faults.enabled());
    engine.call("bench");
    Engine fresh(quietConfig());
    fresh.loadProgram(kLoopProgram);
    fresh.call("bench");
    fresh.call("bench");
    EXPECT_EQ(engine.vm.display(engine.call("verify")),
              fresh.vm.display(fresh.call("verify")));
}

TEST(FaultConfigTest, IgnoresMalformedAndUnknownTokens)
{
    FaultConfig c = FaultConfig::parse(
        "bogus-site=1,alloc-fail-at,gc-every=nope,,compile-fail-at=4");
    EXPECT_EQ(c.allocFailAt, 0u);
    EXPECT_EQ(c.gcEveryNAllocs, 0u);
    EXPECT_EQ(c.compileFailAt, 4u);
    EXPECT_EQ(FaultConfig::parse("").any(), false);
}

// ---------------------------------------------------------------------
// TypeError propagation and engine reuse
// ---------------------------------------------------------------------

TEST(GuardTypeError, UnknownFunctionRaisesTypeError)
{
    Engine engine(quietConfig());
    engine.loadProgram("function f() { return 1; }");
    try {
        engine.call("nope");
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::TypeError);
    }
    // The engine is untouched: calls still work after the catch.
    EXPECT_EQ(engine.call("f").asSmi(), 1);
    EXPECT_GE(engine.trace.counters.get(TraceCounter::EngineErrors), 1u);
}

TEST(GuardTypeError, CallingANonFunctionUnwindsSafely)
{
    Engine engine(quietConfig());
    engine.loadProgram(R"(
var x = 5;
function bad() { return x(3); }
function good() { return 7; }
)");
    try {
        engine.call("bad");
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::TypeError);
        // Context stamped by the interpreter frame that faulted.
        EXPECT_TRUE(e.hasContext());
    }
    EXPECT_EQ(engine.call("good").asSmi(), 7);
}

TEST(GuardTypeError, BuiltinOnWrongReceiverRaisesTypeError)
{
    Engine engine(quietConfig());
    engine.loadProgram("function f() { return 0; }");
    try {
        engine.callBuiltin(BuiltinId::ArrayPush, Value::smi(3),
                           {Value::smi(1)});
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::TypeError);
    }
    EXPECT_EQ(engine.call("f").asSmi(), 0);
}

TEST(GuardTypeError, NonObjectPropertyStoreRaisesTypeError)
{
    Engine engine(quietConfig());
    engine.loadProgram(R"(
var n = 3;
function bad() { n.x = 1; return 0; }
function good() { return 11; }
)");
    EXPECT_THROW(engine.call("bad"), EngineError);
    EXPECT_EQ(engine.call("good").asSmi(), 11);
}

// ---------------------------------------------------------------------
// Resource guards
// ---------------------------------------------------------------------

TEST(GuardOom, HeapExhaustionIsCatchableAndEngineSurvives)
{
    EngineConfig cfg = quietConfig();
    cfg.heapSize = 3u << 20;  // ~1 MiB mortal after reserves
    Engine engine(cfg);
    engine.loadProgram(R"(
var a = [];
function blowup() {
  for (var i = 0; i < 2000000; i = i + 1) { a.push(i * 1.5 + 0.25); }
  return a.length;
}
function reset() { a = []; return 0; }
function small() { return 1 + 2; }
)");
    try {
        engine.call("blowup");
        FAIL() << "expected OutOfMemory";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::OutOfMemory);
    }
    // After dropping the hoard, GC reclaims the space and the same
    // engine keeps executing — including fresh allocation.
    EXPECT_EQ(engine.call("reset").asSmi(), 0);
    EXPECT_EQ(engine.call("small").asSmi(), 3);
}

TEST(GuardOom, GcRetryAvoidsSpuriousFailure)
{
    // Fill then release repeatedly: without the GC-then-retry in
    // Heap::allocate, garbage from earlier rounds would exhaust the
    // mortal region even though live data always fits.
    EngineConfig cfg = quietConfig();
    cfg.heapSize = 3u << 20;
    Engine engine(cfg);
    engine.loadProgram(R"(
var keep = 0;
function round() {
  var a = [];
  for (var i = 0; i < 3000; i = i + 1) { a.push(i * 0.5); }
  return a.length;
}
function bench() { keep = (keep + round()) | 0; }
function verify() { return keep; }
)");
    for (u32 i = 0; i < 40; i++)
        engine.call("bench");
    EXPECT_EQ(engine.call("verify").asSmi(), 40 * 3000);
}

TEST(GuardDepth, RunawayRecursionRaisesStackOverflow)
{
    EngineConfig cfg = quietConfig();
    cfg.maxInvokeDepth = 128;
    Engine engine(cfg);
    engine.loadProgram(R"(
function rec(n) { if (n <= 0) { return 0; } return (rec(n - 1) + 1) | 0; }
)");
    try {
        engine.call("rec", {Value::smi(100000)});
        FAIL() << "expected StackOverflow";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::StackOverflow);
    }
    // Unwound cleanly: bounded recursion still works afterwards.
    EXPECT_EQ(engine.call("rec", {Value::smi(50)}).asSmi(), 50);
}

TEST(GuardFuel, BudgetExhaustionRaisesFuelExhausted)
{
    EngineConfig cfg = quietConfig();
    cfg.maxFuelCycles = 200'000;
    Engine engine(cfg);
    engine.loadProgram(kLoopProgram);
    bool exhausted = false;
    try {
        for (u32 i = 0; i < 100000; i++)
            engine.call("bench");
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::FuelExhausted);
        exhausted = true;
    }
    EXPECT_TRUE(exhausted);
    EXPECT_GT(engine.totalCycles(), cfg.maxFuelCycles);
}

TEST(GuardFuel, SimulatedCoreInstructionBudget)
{
    Heap heap(8u << 20);
    FunctionalCore core(heap, [](RuntimeFn, MachineState &, const MInst &) {});
    core.maxInstructions = 10;

    std::vector<MInst> code;
    for (int i = 0; i < 32; i++) {
        MInst m;
        m.op = MOp::AddI;
        m.rd = 1;
        m.rn = 1;
        m.imm = 1;
        code.push_back(m);
    }
    MInst ret;
    ret.op = MOp::Ret;
    code.push_back(ret);
    CodeObject obj;
    obj.code = std::move(code);

    MachineState st;
    try {
        core.run(obj, st, nullptr, nullptr);
        FAIL() << "expected FuelExhausted";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::FuelExhausted);
    }
}

TEST(GuardStack, SimulatedSpBelowReserveFaults)
{
    Heap heap(8u << 20);
    FunctionalCore core(heap, [](RuntimeFn, MachineState &, const MInst &) {});

    MInst sub;
    sub.op = MOp::SubI;
    sub.rd = kSpReg;
    sub.rn = kSpReg;
    sub.imm = 64;
    MInst ret;
    ret.op = MOp::Ret;
    CodeObject obj;
    obj.code = {sub, ret};

    // Armed: the frame starts inside the stack region, then drops
    // below the reserve — a spill there would overwrite live heap.
    MachineState st;
    st.sp() = heap.sizeBytes() - Heap::kStackReserve + 16;
    try {
        core.run(obj, st, nullptr, nullptr);
        FAIL() << "expected StackOverflow";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::StackOverflow);
    }

    // Unarmed: direct-run tests execute stackless snippets with SP
    // outside the stack region; the guard must not fire for them.
    MachineState bare;
    EXPECT_NO_THROW(core.run(obj, bare, nullptr, nullptr));
}

TEST(GuardRegex, PathologicalPatternRaisesRegexBudget)
{
    RegexLite re("(a+)+(a+)+b");
    std::string subject(40, 'a');
    u64 steps = 0;
    try {
        re.test(subject, steps);
        FAIL() << "expected RegexBudget";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.kind, EngineErrorKind::RegexBudget);
    }
}

// ---------------------------------------------------------------------
// Fault injection: degradation invariants
// ---------------------------------------------------------------------

// GC stress needs a workload that actually allocates.
const char *const kAllocProgram = R"(
var total = 0;
function work(n) {
  var a = [];
  for (var i = 0; i < n; i = i + 1) { a.push((i * 3 + 1) | 0); }
  var s = 0;
  for (var j = 0; j < n; j = j + 1) { s = (s + a[j]) | 0; }
  return s;
}
function bench() { total = (total + work(120)) | 0; }
function verify() { return total; }
)";

TEST(FaultInjection, GcStressPreservesResults)
{
    std::string clean = runChecksum(kAllocProgram, quietConfig(), 20);

    EngineConfig cfg = quietConfig();
    cfg.faults = FaultConfig::parse("gc-every=16");
    Engine engine(cfg);
    engine.loadProgram(kAllocProgram);
    for (u32 i = 0; i < 20; i++)
        engine.call("bench");
    EXPECT_EQ(engine.vm.display(engine.call("verify")), clean);
    EXPECT_GT(engine.faults.injected, 0u);
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::FaultsInjected),
              engine.faults.injected);
}

TEST(FaultInjection, CompileFailFallsBackAndPreservesResults)
{
    std::string clean = runChecksum(kLoopProgram, quietConfig(), 20);

    EngineConfig cfg = quietConfig();
    cfg.faults = FaultConfig::parse("compile-fail-at=1");
    Engine engine(cfg);
    engine.loadProgram(kLoopProgram);
    for (u32 i = 0; i < 20; i++)
        engine.call("bench");
    EXPECT_EQ(engine.vm.display(engine.call("verify")), clean);
    EXPECT_EQ(engine.faults.injected, 1u);
    // The failed attempt must not poison the function: with the
    // one-shot fault spent, a later tier-up retry succeeded.
    EXPECT_GT(engine.compilations, 0u);
}

TEST(FaultInjection, SpuriousDeoptReentersInterpreterIdentically)
{
    std::string clean = runChecksum(kLoopProgram, quietConfig(), 20);

    EngineConfig cfg = quietConfig();
    cfg.faults = FaultConfig::parse("spurious-deopt-at=1");
    Engine engine(cfg);
    engine.loadProgram(kLoopProgram);
    for (u32 i = 0; i < 20; i++)
        engine.call("bench");
    EXPECT_EQ(engine.vm.display(engine.call("verify")), clean);
    EXPECT_EQ(engine.faults.injected, 1u);

    // Injected deopts are logged through the normal taxonomy.
    bool saw = false;
    for (const DeoptRecord &d : engine.deoptLog)
        saw = saw || d.reason == DeoptReason::DeoptimizeNow;
    EXPECT_TRUE(saw);
}

TEST(FaultInjection, AllocFailIsDeterministic)
{
    auto runOnce = [](std::string &what) {
        EngineConfig cfg;
        cfg.samplerEnabled = false;
        cfg.faults = FaultConfig::parse("alloc-fail-at=4000");
        Engine engine(cfg);
        engine.loadProgram(kLoopProgram);
        try {
            for (u32 i = 0; i < 5000; i++)
                engine.call("bench");
        } catch (const EngineError &e) {
            what = e.what();
            EXPECT_EQ(e.kind, EngineErrorKind::OutOfMemory);
            return engine.faults.allocations;
        }
        return u64{0};
    };
    std::string what_a, what_b;
    u64 a = runOnce(what_a);
    u64 b = runOnce(what_b);
    EXPECT_EQ(a, 4000u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(what_a, what_b);
}

TEST(FaultInjection, NoFaultsMeansNoCycleDrift)
{
    // With an empty FaultConfig the guards must be invisible: two
    // engines, one built as the seed would build it and one with the
    // vguard-era defaults, agree on every cycle count.
    EngineConfig cfg = quietConfig();
    Engine a(cfg);
    a.loadProgram(kLoopProgram);
    for (u32 i = 0; i < 10; i++)
        a.call("bench");

    Engine b(cfg);
    b.loadProgram(kLoopProgram);
    for (u32 i = 0; i < 10; i++)
        b.call("bench");

    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_EQ(a.interpreterCycles, b.interpreterCycles);
    EXPECT_EQ(a.faults.injected, 0u);
}

// ---------------------------------------------------------------------
// Fault injection under fuzz: never crash, never silently wrong
// ---------------------------------------------------------------------

TEST(FaultFuzz, TwoHundredProgramsUnderRotatingFaults)
{
    const char *const specs[] = {
        "gc-every=7",
        "alloc-fail-at=900",
        "compile-fail-at=1",
        "spurious-deopt-at=1",
        "gc-every=13,compile-fail-at=2",
    };
    constexpr u64 kPrograms = 200;
    u64 injected_total = 0;
    u64 structured_errors = 0;

    FuzzOptions opts;
    opts.recursiveHelpers = 1;  // exercise re-entry + unwinding paths

    for (u64 seed = 1; seed <= kPrograms; seed++) {
        std::string source = generateFuzzProgram(seed, opts);

        EngineConfig clean_cfg;
        clean_cfg.samplerEnabled = false;
        clean_cfg.heapSize = 8u << 20;
        clean_cfg.faults = FaultConfig{};
        std::string clean;
        ASSERT_NO_THROW(clean = runChecksum(source, clean_cfg, 4))
            << "seed " << seed << "\n" << source;

        EngineConfig cfg = clean_cfg;
        cfg.faults = FaultConfig::parse(specs[seed % 5]);
        Engine engine(cfg);
        try {
            engine.loadProgram(source);
            for (u32 i = 0; i < 4; i++)
                engine.call("bench");
            std::string got = engine.vm.display(engine.call("verify"));
            // Completed runs must agree bit-identically with the
            // uninjected run.
            ASSERT_EQ(got, clean)
                << "seed " << seed << " spec " << specs[seed % 5] << "\n"
                << source;
        } catch (const EngineError &e) {
            // Structured degradation is the only acceptable failure.
            structured_errors++;
            EXPECT_EQ(e.kind, EngineErrorKind::OutOfMemory)
                << "seed " << seed << " spec " << specs[seed % 5]
                << " kind " << engineErrorKindName(e.kind);
        }
        injected_total += engine.faults.injected;
    }
    // The schedule must actually fire, and GC stress must dominate.
    EXPECT_GT(injected_total, kPrograms);
}

// ---------------------------------------------------------------------
// Environment-driven fault matrix (CI hook)
// ---------------------------------------------------------------------

TEST(FaultMatrixEnv, SuiteSurvivesInjectedFaults)
{
    FaultConfig env = FaultConfig::fromEnv();
    if (!env.any())
        GTEST_SKIP() << "set VSPEC_FAULT to run the fault matrix";

    u32 checked = 0;
    for (const Workload &w : suite()) {
        if (checked == 6)
            break;
        checked++;

        RunConfig base;
        base.iterations = 25;
        base.samplerEnabled = false;
        base.faults = FaultConfig{};
        RunOutcome ref = runWorkload(w, base, nullptr);
        ASSERT_TRUE(ref.completed) << w.name << ": " << ref.error;

        RunConfig rc = base;
        rc.faults = env;
        RunOutcome out = runWorkload(w, rc, &ref.checksum);
        if (out.completed) {
            EXPECT_TRUE(out.valid)
                << w.name << ": checksum " << out.checksum << " != "
                << ref.checksum;
        } else {
            // A structured error is an acceptable outcome (alloc-fail);
            // an unclassified one is not.
            EXPECT_FALSE(out.errorKind.empty())
                << w.name << ": unstructured failure: " << out.error;
        }
    }
}
