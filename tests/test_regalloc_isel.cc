/** @file Backend tests: register allocation and code generation. */

#include <gtest/gtest.h>

#include "backend/isel.hh"
#include "ir/passes.hh"
#include "runtime/engine.hh"

using namespace vspec;

namespace
{

/** Compile bench() of @p src down to a CodeObject for @p isa. */
std::unique_ptr<CodeObject>
compileBench(Engine &engine, const std::string &src, IsaFlavour isa,
             bool branches_removed = false)
{
    engine.loadProgram(src);
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    CompilerEnv env{engine.vm, engine.globals, engine.functions};
    FunctionInfo &fn = engine.functions.at(engine.functions.idOf("bench"));
    auto graph = buildGraph(env, fn);
    EXPECT_TRUE(graph.has_value());
    runPasses(*graph, PassConfig::none());
    CodegenConfig cfg;
    cfg.flavour = isa;
    cfg.removeDeoptBranches = branches_removed;
    return generateCode(env, *graph, cfg);
}

const char *kKernel = R"JS(
var a = [];
function setup() { for (var i = 0; i < 16; i++) { a.push(i % 9); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 16; i++) { s = (s + a[i] * 3) % 4096; }
    return s;
}
)JS";

} // namespace

TEST(Backend, EveryDeoptBranchTargetsTheExitRegion)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto code = compileBench(engine, kKernel, IsaFlavour::Arm64Like);
    // Find where the deopt-exit region begins.
    size_t first_exit = code->code.size();
    for (size_t i = 0; i < code->code.size(); i++) {
        if (code->code[i].op == MOp::DeoptExit) {
            first_exit = i;
            break;
        }
    }
    ASSERT_LT(first_exit, code->code.size());
    for (const auto &m : code->code) {
        if (m.isDeoptBranch && m.op == MOp::Bcond) {
            // §III-A: "deoptimization paths always jump to a specific
            // region at the end of a compiled function."
            EXPECT_GE(m.target, first_exit);
            EXPECT_EQ(code->code[m.target].op, MOp::DeoptExit);
        }
    }
}

TEST(Backend, ChecksCarryAnnotations)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto code = compileBench(engine, kKernel, IsaFlavour::Arm64Like);
    EXPECT_FALSE(code->checks.empty());
    u32 with_check = code->totalCheckInstructions();
    EXPECT_GT(with_check, 0u);
    auto per_group = code->checkInstructionsPerGroup();
    u32 sum = 0;
    for (u32 v : per_group)
        sum += v;
    EXPECT_EQ(sum, with_check);
    // Every annotated id refers to a registered check.
    for (const auto &m : code->code) {
        if (m.checkId != kNoCheck)
            ASSERT_LT(m.checkId, code->checks.size());
    }
}

TEST(Backend, Arm64MapCheckLoadsMapWordExplicitly)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto arm = compileBench(engine, kKernel, IsaFlavour::Arm64Like);
    bool arm_has_cmp_mem = false;
    for (const auto &m : arm->code)
        if (m.op == MOp::CmpMemI || m.op == MOp::CmpMem)
            arm_has_cmp_mem = true;
    EXPECT_FALSE(arm_has_cmp_mem) << "RISC flavour must not use "
                                     "memory-operand compares";
}

TEST(Backend, X64MapCheckUsesMemoryOperand)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto x64 = compileBench(engine, kKernel, IsaFlavour::X64Like);
    bool has_cmp_mem = false;
    for (const auto &m : x64->code)
        if (m.op == MOp::CmpMemI || m.op == MOp::CmpMem)
            has_cmp_mem = true;
    EXPECT_TRUE(has_cmp_mem) << "x64 flavour folds map/bounds loads "
                                "into cmp";
}

TEST(Backend, BranchRemovalKeepsConditionsDropsBranches)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto def = compileBench(engine, kKernel, IsaFlavour::Arm64Like, false);
    EngineConfig cfg2;
    cfg2.enableOptimization = false;
    Engine engine2(cfg2);
    auto nobr = compileBench(engine2, kKernel, IsaFlavour::Arm64Like, true);

    auto count = [](const CodeObject &c, auto pred) {
        u32 n = 0;
        for (const auto &m : c.code)
            if (pred(m))
                n++;
        return n;
    };
    u32 def_branches = count(*def, [](const MInst &m) {
        return m.isDeoptBranch && m.op == MOp::Bcond;
    });
    u32 nobr_branches = count(*nobr, [](const MInst &m) {
        return m.isDeoptBranch && m.op == MOp::Bcond;
    });
    EXPECT_GT(def_branches, 0u);
    EXPECT_EQ(nobr_branches, 0u);
    // Condition computation survives (§IV-B: "without altering the
    // computation of Boolean conditions").
    u32 def_conds = count(*def, [](const MInst &m) {
        return m.checkRole == CheckRole::Condition;
    });
    u32 nobr_conds = count(*nobr, [](const MInst &m) {
        return m.checkRole == CheckRole::Condition;
    });
    EXPECT_GT(nobr_conds, 0u);
    EXPECT_GE(nobr_conds + 4, def_conds);
}

TEST(Backend, SpillingWorksUnderRegisterPressure)
{
    // Many simultaneously-live non-constant values force spills
    // (constants alone would be rematerialized, not allocated).
    std::string src = R"JS(
var seed = 3;
function bench() {
    var a1 = seed + 1; var a2 = a1 + 1; var a3 = a2 + 1;
    var a4 = a3 + 1; var a5 = a4 + 1; var a6 = a5 + 1;
    var a7 = a6 + 1; var a8 = a7 + 1; var a9 = a8 + 1;
    var a10 = a9 + 1; var a11 = a10 + 1; var a12 = a11 + 1;
    var a13 = a12 + 1; var a14 = a13 + 1; var a15 = a14 + 1;
    var a16 = a15 + 1; var a17 = a16 + 1; var a18 = a17 + 1;
    var a19 = a18 + 1; var a20 = a19 + 1; var a21 = a20 + 1;
    var a22 = a21 + 1; var a23 = a22 + 1; var a24 = a23 + 1;
    var a25 = a24 + 1; var a26 = a25 + 1;
    var s = 0;
    for (var i = 0; i < 10; i++) {
        s = s + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9 + a10
              + a11 + a12 + a13 + a14 + a15 + a16 + a17 + a18 + a19
              + a20 + a21 + a22 + a23 + a24 + a25 + a26;
        a1 = a1 + 1; a13 = a13 + 1; a26 = a26 + 1;
    }
    return s;
}
)JS";
    Engine jit{EngineConfig{}};
    jit.loadProgram(src);
    EngineConfig plain;
    plain.enableOptimization = false;
    Engine interp(plain);
    interp.loadProgram(src);
    for (int i = 0; i < 5; i++) {
        ASSERT_EQ(jit.vm.display(jit.call("bench")),
                  interp.vm.display(interp.call("bench")));
    }
    FunctionId fid = jit.functions.idOf("bench");
    const FunctionInfo &fn = jit.functions.at(fid);
    ASSERT_TRUE(fn.hasCode());
    EXPECT_GT(jit.codeObjects[fn.codeId]->spillSlots, 0u);
}

TEST(Backend, DisassemblyIsWellFormed)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    auto code = compileBench(engine, kKernel, IsaFlavour::Arm64Like);
    std::string dis = code->disassemble();
    EXPECT_NE(dis.find("deopt"), std::string::npos);
    EXPECT_NE(dis.find("ldr"), std::string::npos);
    EXPECT_NE(dis.find("check#"), std::string::npos);
}
