/**
 * @file
 * vserve tests: fault containment (every engine failure becomes a
 * typed response), deadline mapping onto the fuel guard, retry with
 * backoff, quarantine-and-replace, graceful degradation to
 * interpreter-only, admission control, and the two determinism
 * contracts — soak outcomes byte-identical across job counts, and
 * good-request cycle counts on an abused engine bit-identical with a
 * never-faulted engine (satellite: engine reuse under sustained
 * abuse).
 */

#include <gtest/gtest.h>

#include "runtime/engine.hh"
#include "serve/soak.hh"
#include "support/fuzz_gen.hh"

using namespace vspec;
using namespace vspec::serve;

namespace
{

IsolateOptions
quietIsolate()
{
    IsolateOptions io;
    io.bootProgram = bootProgram();
    return io;
}

/** A router wired to a pool the test also holds. */
struct Rig
{
    explicit Rig(PoolOptions po, RouterOptions ro = {})
        : pool(po),
          router(pool, ro)
    {}

    IsolatePool pool;
    RequestRouter router;

    void run(u32 max_ticks = 10000) { router.drain(max_ticks); }
};

Request
scriptRequest(u64 id, const char *program, u32 bench_calls = 1,
              u64 deadline = 20'000'000)
{
    Request r;
    r.id = id;
    r.kind = RequestKind::Script;
    r.program = program;
    r.benchCalls = bench_calls;
    r.deadlineCycles = deadline;
    return r;
}

const char *const kGoodScript = R"(
var total = 0;
function bench() {
  var s = 0;
  for (var i = 0; i < 100; i = i + 1) { s = (s + i * 3) | 0; }
  total = (total + s) | 0;
  return total;
}
function verify() { return total; }
)";

const char *const kFuelBombScript = R"(
var sink = 0;
function bench() {
  for (var i = 0; i < 1000000000; i = i + 1) { sink = (sink + i) | 0; }
  return sink;
}
function verify() { return sink; }
)";

const char *const kTypeBombScript = R"(
var x = 5;
function bench() { return x(3); }
function verify() { return 0; }
)";

} // namespace

// ---------------------------------------------------------------------
// Typed responses, deadlines, retries
// ---------------------------------------------------------------------

TEST(Serve, NamesAreStable)
{
    EXPECT_STREQ(requestKindName(RequestKind::Warmup), "warmup");
    EXPECT_STREQ(responseStatusName(ResponseStatus::Shed), "shed");
    EXPECT_EQ(classifyEngineError(EngineErrorKind::TypeError),
              FaultClass::App);
    EXPECT_EQ(classifyEngineError(EngineErrorKind::FuelExhausted),
              FaultClass::Deadline);
    EXPECT_EQ(classifyEngineError(EngineErrorKind::OutOfMemory),
              FaultClass::Transient);
    EXPECT_EQ(classifyEngineError(EngineErrorKind::CompileFailed),
              FaultClass::Transient);
}

TEST(Serve, GoodScriptAnswersOk)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    Rig rig(po);
    rig.router.submit(scriptRequest(0, kGoodScript, 3));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 1u);
    const Response &r = rig.router.responses()[0];
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_GT(r.simCycles, 0u);
    EXPECT_FALSE(r.result.empty());
}

TEST(Serve, DeadlineMapsToFuelGuard)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    Rig rig(po);
    rig.router.submit(scriptRequest(0, kFuelBombScript, 1, 200'000));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 1u);
    const Response &r = rig.router.responses()[0];
    EXPECT_EQ(r.status, ResponseStatus::DeadlineExceeded);
    EXPECT_EQ(r.errorKind, EngineErrorKind::FuelExhausted);
    EXPECT_EQ(r.attempts, 1u);  // deadlines are never retried

    // The isolate survives and serves the next request normally.
    rig.router.submit(scriptRequest(1, kGoodScript));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 2u);
    EXPECT_EQ(rig.router.responses()[1].status, ResponseStatus::Ok);
}

TEST(Serve, AppErrorsFailFastWithoutHealthImpact)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    po.quarantineAfter = 1;  // any health hit would quarantine
    Rig rig(po);
    for (u64 i = 0; i < 5; i++)
        rig.router.submit(scriptRequest(i, kTypeBombScript));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 5u);
    for (const Response &r : rig.router.responses()) {
        EXPECT_EQ(r.status, ResponseStatus::AppError);
        EXPECT_EQ(r.errorKind, EngineErrorKind::TypeError);
        EXPECT_EQ(r.attempts, 1u);
        EXPECT_EQ(r.generation, 0u);  // no quarantine ever triggered
    }
    EXPECT_EQ(rig.router.stats.quarantines, 0u);
    EXPECT_EQ(rig.router.stats.retries, 0u);
}

TEST(Serve, RetryRecoversTransientFault)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    RouterOptions ro;
    ro.maxAttempts = 3;
    ro.backoffBaseTicks = 2;
    Rig rig(po, ro);

    // Arm a one-shot allocation fault on the live engine: the first
    // attempt hits it, the retry sails past (the ordinal is spent).
    Engine &eng = *rig.pool.at(0).engine;
    FaultConfig fc;
    fc.allocFailAt = eng.faults.allocations + 1;
    eng.setFaultConfig(fc);

    // This script heap-allocates (array literal), so it trips the
    // armed fault; a pure-SMI loop never would.
    static const char *const kAllocScript = R"(
var total = 0;
function bench() {
  var a = [1, 2, 3];
  a.push(4);
  total = (total + a[0] + a[3]) | 0;
  return total;
}
function verify() { return total; }
)";
    rig.router.submit(scriptRequest(0, kAllocScript));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 1u);
    const Response &r = rig.router.responses()[0];
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(rig.router.stats.retries, 1u);
    // Backoff kept the retry off the immediate next tick.
    EXPECT_GE(r.queueTicks, ro.backoffBaseTicks);
}

TEST(Serve, ShedsWhenSaturatedAndRecovers)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    RouterOptions ro;
    ro.queueCapacity = 2;
    ro.serviceQuantum = 1;
    Rig rig(po, ro);
    for (u64 i = 0; i < 6; i++)
        rig.router.submit(scriptRequest(i, kGoodScript));
    // 2 admitted, 4 shed — typed rejections, not exceptions.
    EXPECT_EQ(rig.router.stats.admitted, 2u);
    EXPECT_EQ(rig.router.stats.shed, 4u);
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 6u);
    u32 ok = 0, shed = 0;
    for (const Response &r : rig.router.responses()) {
        ok += r.status == ResponseStatus::Ok;
        shed += r.status == ResponseStatus::Shed;
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(shed, 4u);
    // Once drained, new work is admitted again.
    rig.router.submit(scriptRequest(6, kGoodScript));
    EXPECT_EQ(rig.router.stats.shed, 4u);
    rig.run();
    EXPECT_EQ(rig.router.responses().back().status, ResponseStatus::Ok);
}

// ---------------------------------------------------------------------
// Quarantine and graceful degradation
// ---------------------------------------------------------------------

TEST(Serve, QuarantineReplacesFlappingIsolateThenDegrades)
{
    PoolOptions po;
    po.isolates = 1;
    po.jobs = 1;
    po.isolate = quietIsolate();
    po.targetIsolate = 0;
    po.targetFaults = FaultConfig::parse("compile-fail-every=1");
    po.quarantineAfter = 3;
    po.cooldownTicks = 2;
    po.degradeAfterCompileQuarantines = 2;
    RouterOptions ro;
    ro.maxAttempts = 2;
    ro.queueCapacity = 64;
    Rig rig(po, ro);

    // A stream of warmups: every forced JIT compile fails on this
    // isolate, so each request exhausts retries as CompileFailed.
    // 3 transient responses -> quarantine #1 (replaced, cooled down),
    // 3 more -> quarantine #2 escalates to interpreter-only.
    auto warmup = [](u64 id) {
        Request r;
        r.id = id;
        r.kind = RequestKind::Warmup;
        r.program = warmupProgram();
        r.entry = "work";
        r.benchCalls = 2;
        r.deadlineCycles = 20'000'000;
        return r;
    };
    for (u64 i = 0; i < 6; i++)
        rig.router.submit(warmup(i));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 6u);
    for (const Response &r : rig.router.responses()) {
        EXPECT_EQ(r.status, ResponseStatus::TransientError);
        EXPECT_EQ(r.errorKind, EngineErrorKind::CompileFailed);
        EXPECT_EQ(r.attempts, ro.maxAttempts);
    }
    EXPECT_EQ(rig.router.stats.quarantines, 1u);
    EXPECT_EQ(rig.router.stats.degradations, 1u);
    const Isolate &iso = rig.pool.at(0);
    EXPECT_TRUE(iso.degraded);
    EXPECT_EQ(iso.generation, 2u);

    // The degraded isolate is *serving again*: warmups now answer Ok
    // and report the trade instead of failing.
    rig.router.submit(warmup(6));
    rig.router.submit(warmup(7));
    rig.run();
    ASSERT_EQ(rig.router.responses().size(), 8u);
    u32 degraded_ok = 0;
    for (const Response &r : rig.router.responses())
        if (r.status == ResponseStatus::Ok && r.degraded) {
            degraded_ok++;
            EXPECT_EQ(r.result, "degraded:interpreter-only");
        }
    EXPECT_EQ(degraded_ok, 2u);

    // And it still executes real work (interpreter tier).
    rig.router.submit(scriptRequest(100, kGoodScript));
    rig.run();
    const Response &last = rig.router.responses().back();
    EXPECT_EQ(last.status, ResponseStatus::Ok);
    EXPECT_TRUE(last.degraded);
}

TEST(Serve, SpilloverRoutesAroundQuarantinedIsolate)
{
    PoolOptions po;
    po.isolates = 2;
    po.jobs = 1;
    po.isolate = quietIsolate();
    po.targetIsolate = 0;
    po.targetFaults = FaultConfig::parse("compile-fail-every=1");
    po.quarantineAfter = 1;
    po.cooldownTicks = 1000;  // keep it out of rotation for the test
    RouterOptions ro;
    ro.maxAttempts = 1;
    Rig rig(po, ro);

    Request w;
    w.id = 0;
    w.tenant = 0;  // prefers isolate 0
    w.kind = RequestKind::Warmup;
    w.program = warmupProgram();
    w.entry = "work";
    w.benchCalls = 2;
    w.deadlineCycles = 20'000'000;
    rig.router.submit(std::move(w));
    rig.run();
    EXPECT_EQ(rig.router.stats.quarantines, 1u);

    // Tenant 0's next request spills over to isolate 1 and succeeds.
    Request s = scriptRequest(1, kGoodScript);
    s.tenant = 0;
    rig.router.submit(std::move(s));
    rig.run();
    const Response &r = rig.router.responses().back();
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.isolate, 1u);
}

// ---------------------------------------------------------------------
// Soak: full harness, fault matrix, cross-jobs determinism
// ---------------------------------------------------------------------

namespace
{

SoakOptions
smallSoak(u32 jobs)
{
    SoakOptions so;
    so.isolates = 4;
    so.jobs = jobs;
    so.traffic.requests = 120;
    so.traffic.seed = 7;
    so.traffic.validate = true;
    so.targetIsolate = 1;
    so.targetFaults =
        FaultConfig::parse("compile-fail-every=1,alloc-fail-every=900");
    so.quarantineAfter = 3;
    so.cooldownTicks = 4;
    so.degradeAfterCompileQuarantines = 2;
    return so;
}

} // namespace

TEST(ServeSoak, FaultMatrixContainedAndDeterministicAcrossJobs)
{
    SoakReport seq = runSoak(smallSoak(1));
    SoakReport par = runSoak(smallSoak(4));

    // Zero crashes by construction; every submitted request got a
    // typed response.
    EXPECT_EQ(seq.responses.size(), seq.stats.submitted);
    EXPECT_EQ(seq.stats.submitted, 120u);

    // Injected faults were classified, retried, and ultimately drove
    // the circuit breaker on the target isolate.
    EXPECT_GT(seq.stats.retries, 0u);
    EXPECT_GT(seq.stats.quarantines + seq.stats.degradations, 0u);

    // Good results survived the whole matrix bit-exactly.
    EXPECT_EQ(seq.validationFailures, 0u);
    EXPECT_GT(seq.stats.ok(), 0u);

    // The determinism contract: everything except host timing is
    // byte-identical between jobs=1 and jobs=4.
    EXPECT_EQ(seq.digest, par.digest);
    EXPECT_EQ(seq.isolateSimCycles, par.isolateSimCycles);
    EXPECT_EQ(seq.isolateGenerations, par.isolateGenerations);
    EXPECT_EQ(seq.stats.shed, par.stats.shed);
    EXPECT_EQ(seq.stats.retries, par.stats.retries);
    EXPECT_EQ(seq.stats.quarantines, par.stats.quarantines);
    EXPECT_EQ(seq.stats.degradations, par.stats.degradations);
    ASSERT_EQ(seq.responses.size(), par.responses.size());
    for (size_t i = 0; i < seq.responses.size(); i++) {
        EXPECT_EQ(seq.responses[i].id, par.responses[i].id);
        EXPECT_EQ(seq.responses[i].simCycles,
                  par.responses[i].simCycles)
            << "response " << i;
    }
}

// ---------------------------------------------------------------------
// Satellite: engine reuse under sustained abuse (one Engine, >= 200
// alternating good/faulting requests, every EngineError kind, good
// cycles bit-identical with a never-faulted engine)
// ---------------------------------------------------------------------

namespace
{

const char *const kAbuseGood = R"(
var g_total = 0;
function goodBench() {
  var s = 0;
  for (var i = 0; i < 150; i = i + 1) { s = (s + i * 3) | 0; }
  g_total = (g_total + s) | 0;
  return g_total;
}
function goodVerify() { return g_total; }
)";

const char *const kAbuseType = R"(
var tb_x = 5;
function tbBench() { return tb_x(3); }
)";

const char *const kAbuseRecursion = R"(
function rbHelper(n) { return rbHelper(n + 1); }
function rbBench() { return rbHelper(1); }
)";

const char *const kAbuseRegex = R"(
function reBench() {
  return reTest("(a+)+(a+)+b", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
}
)";

const char *const kAbuseFuel = R"(
var fb_sink = 0;
function fbBench() {
  for (var i = 0; i < 1000000000; i = i + 1) { fb_sink = (fb_sink + i) | 0; }
  return fb_sink;
}
)";

const char *const kAbuseAlloc = R"(
function obBench() {
  var a = [1, 2, 3];
  a.push(4);
  return a[0];
}
)";

/** Load @p program and pin every function it added to the interpreter
 *  tier, so abuse requests never touch the shared simulated
 *  cache/branch-predictor state that good-request JIT timing uses. */
void
loadInterpreterOnly(Engine &eng, const char *program)
{
    u32 before = eng.functions.count();
    eng.loadProgram(program);
    for (u32 id = before; id < eng.functions.count(); id++)
        eng.functions.at(id).optimizationDisabled = true;
}

} // namespace

TEST(ServeSoak, EngineReuseUnderSustainedAbuse)
{
    EngineConfig cfg;
    cfg.samplerEnabled = false;
    cfg.faults = FaultConfig::none();
    cfg.maxInvokeDepth = 64;

    Engine abused(cfg);
    Engine control(cfg);
    abused.loadProgram(kAbuseGood);
    control.loadProgram(kAbuseGood);
    // The abuse programs are loaded once, interpreter-pinned.
    loadInterpreterOnly(abused, kAbuseType);
    loadInterpreterOnly(abused, kAbuseRecursion);
    loadInterpreterOnly(abused, kAbuseRegex);
    loadInterpreterOnly(abused, kAbuseFuel);
    loadInterpreterOnly(abused, kAbuseAlloc);
    loadInterpreterOnly(abused, bootProgram());  // warmup compile target

    u32 seen[kNumEngineErrorKinds] = {};
    std::vector<u64> abused_good, control_good;
    constexpr u32 kRequests = 220;
    for (u32 i = 0; i < kRequests; i++) {
        if (i % 2 == 0) {
            // Good request on both engines; record the cycle delta.
            u64 a0 = abused.totalCycles();
            abused.call("goodBench");
            abused_good.push_back(abused.totalCycles() - a0);
            u64 c0 = control.totalCycles();
            control.call("goodBench");
            control_good.push_back(control.totalCycles() - c0);
            continue;
        }
        // Abuse request on the abused engine only, rotating through
        // every EngineError kind.
        try {
            switch ((i / 2) % 6) {
              case 0:
                abused.call("tbBench");
                break;
              case 1:
                abused.call("rbBench");
                break;
              case 2:
                abused.call("reBench");
                break;
              case 3: {
                u64 save = abused.config.maxFuelCycles;
                abused.config.maxFuelCycles =
                    abused.totalCycles() + 100'000;
                try {
                    abused.call("fbBench");
                } catch (...) {
                    abused.config.maxFuelCycles = save;
                    throw;
                }
                abused.config.maxFuelCycles = save;
                break;
              }
              case 4: {
                FaultConfig fc;
                fc.allocFailAt = abused.faults.allocations + 1;
                abused.setFaultConfig(fc);
                try {
                    abused.call("obBench");
                } catch (...) {
                    abused.setFaultConfig(FaultConfig::none());
                    throw;
                }
                abused.setFaultConfig(FaultConfig::none());
                break;
              }
              case 5: {
                FaultConfig fc;
                fc.compileFailAt = abused.faults.compiles + 1;
                abused.setFaultConfig(fc);
                FunctionId fn = abused.functions.idOf("work");
                ASSERT_NE(fn, kInvalidFunction);
                bool compiled =
                    abused.compileFunction(abused.functions.at(fn));
                abused.setFaultConfig(FaultConfig::none());
                if (!compiled)
                    throw EngineError(EngineErrorKind::CompileFailed,
                                      "injected warmup failure");
                break;
              }
            }
            FAIL() << "abuse request " << i << " did not fault";
        } catch (const EngineError &e) {
            seen[static_cast<u32>(e.kind)]++;
        }
    }

    // Every EngineError kind was exercised and contained.
    for (u32 k = 0; k < kNumEngineErrorKinds; k++)
        EXPECT_GT(seen[k], 0u)
            << engineErrorKindName(static_cast<EngineErrorKind>(k));

    // Results stayed correct: the good accumulator saw only good work.
    EXPECT_EQ(abused.vm.display(abused.call("goodVerify")),
              control.vm.display(control.call("goodVerify")));

    // And the headline invariant: per-request good cycles on the
    // abused engine are bit-identical with the never-faulted control.
    ASSERT_EQ(abused_good.size(), control_good.size());
    for (size_t i = 0; i < abused_good.size(); i++)
        EXPECT_EQ(abused_good[i], control_good[i]) << "good call " << i;
}
