/** @file Unit tests for the simulated heap. */

#include <gtest/gtest.h>

#include "vm/heap.hh"

using namespace vspec;

TEST(Heap, AllocateWritesHeader)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(16, 0x1235, 7);
    EXPECT_NE(a, 0u);
    EXPECT_EQ(heap.mapWordOf(a), 0x1235u);
    EXPECT_EQ(heap.auxOf(a), 7u);
}

TEST(Heap, AllocationsAreAlignedAndDisjoint)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(12, 1, 0);  // rounds to 16
    Addr b = heap.allocate(8, 1, 0);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GE(b, a + 16);
}

TEST(Heap, ReadWriteRoundTrip)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(32, 1, 0);
    heap.writeU32(a + 8, 0xdeadbeef);
    EXPECT_EQ(heap.readU32(a + 8), 0xdeadbeefu);
    heap.writeU64(a + 16, 0x0123456789abcdefULL);
    EXPECT_EQ(heap.readU64(a + 16), 0x0123456789abcdefULL);
    heap.writeF64(a + 24, 3.25);
    EXPECT_DOUBLE_EQ(heap.readF64(a + 24), 3.25);
    heap.writeU8(a + 9, 0x42);
    EXPECT_EQ(heap.readU8(a + 9), 0x42u);
}

TEST(Heap, ValueRoundTrip)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(16, 1, 0);
    heap.writeValue(a + 8, Value::smi(-77));
    EXPECT_EQ(heap.readValue(a + 8).asSmi(), -77);
}

TEST(Heap, ImmortalRegionIsBelowMortal)
{
    Heap heap(8u << 20);
    Addr imm = heap.allocateImmortal(16, 1, 0);
    Addr mort = heap.allocate(16, 1, 0);
    EXPECT_LT(imm, Heap::kImmortalReserve);
    EXPECT_GE(mort, Heap::kImmortalReserve);
}

TEST(Heap, OutOfBoundsAccessPanics)
{
    Heap heap(8u << 20);
    EXPECT_THROW(heap.readU32(heap.sizeBytes()), std::runtime_error);
    EXPECT_THROW(heap.readU32(heap.sizeBytes() - 2), std::runtime_error);
}

TEST(Heap, ContainsChecksRange)
{
    Heap heap(8u << 20);
    EXPECT_FALSE(heap.contains(0, 4));
    EXPECT_TRUE(heap.contains(8, 4));
    EXPECT_FALSE(heap.contains(heap.sizeBytes() - 2, 4));
}

TEST(Heap, StackRegionIsReserved)
{
    Heap heap(4u << 20);
    // Exhaust the mortal region; allocation must fail (panic) before
    // reaching the stack reserve.
    EXPECT_THROW(
        {
            for (int i = 0; i < 1 << 20; i++)
                heap.allocate(4096, 1, 0);
        },
        std::runtime_error);
    EXPECT_GT(heap.stackTop(), heap.sizeBytes() - Heap::kStackReserve);
}

TEST(Heap, ExhaustionWithoutGcPanics)
{
    Heap heap(4u << 20);
    EXPECT_THROW(
        {
            for (int i = 0; i < 10000; i++)
                heap.allocate(1u << 20, 1, 0);
        },
        std::runtime_error);
}

TEST(Heap, StatsTrackAllocations)
{
    Heap heap(8u << 20);
    u64 before = heap.stats().objectsAllocated;
    heap.allocate(16, 1, 0);
    heap.allocate(16, 1, 0);
    EXPECT_EQ(heap.stats().objectsAllocated, before + 2);
    EXPECT_GE(heap.stats().bytesAllocated, 32u);
}
