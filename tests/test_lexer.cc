/** @file Unit tests for the MiniJS lexer. */

#include <gtest/gtest.h>

#include "frontend/lexer.hh"

using namespace vspec;

TEST(Lexer, NumbersDecimalHexAndFloat)
{
    auto toks = tokenize("42 3.5 0x1f 1e3 2.5e-2");
    ASSERT_EQ(toks.size(), 6u);  // + eof
    EXPECT_DOUBLE_EQ(toks[0].number, 42.0);
    EXPECT_DOUBLE_EQ(toks[1].number, 3.5);
    EXPECT_DOUBLE_EQ(toks[2].number, 31.0);
    EXPECT_DOUBLE_EQ(toks[3].number, 1000.0);
    EXPECT_DOUBLE_EQ(toks[4].number, 0.025);
}

TEST(Lexer, StringsWithEscapes)
{
    auto toks = tokenize(R"("a\nb" 'c\'d')");
    EXPECT_EQ(toks[0].str, "a\nb");
    EXPECT_EQ(toks[1].str, "c'd");
}

TEST(Lexer, KeywordsVsIdentifiers)
{
    auto toks = tokenize("var varx function fn typeof typeofx");
    EXPECT_EQ(toks[0].kind, TokKind::Keyword);
    EXPECT_EQ(toks[1].kind, TokKind::Ident);
    EXPECT_EQ(toks[2].kind, TokKind::Keyword);
    EXPECT_EQ(toks[3].kind, TokKind::Ident);
    EXPECT_EQ(toks[4].kind, TokKind::Keyword);
    EXPECT_EQ(toks[5].kind, TokKind::Ident);
}

TEST(Lexer, LongestMatchPunctuation)
{
    auto toks = tokenize(">>> >> > >= >>>= === == =");
    EXPECT_EQ(toks[0].text, ">>>");
    EXPECT_EQ(toks[1].text, ">>");
    EXPECT_EQ(toks[2].text, ">");
    EXPECT_EQ(toks[3].text, ">=");
    EXPECT_EQ(toks[4].text, ">>>=");
    EXPECT_EQ(toks[5].text, "===");
    EXPECT_EQ(toks[6].text, "==");
    EXPECT_EQ(toks[7].text, "=");
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = tokenize("a // line comment\n b /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, LineNumbersTracked)
{
    auto toks = tokenize("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, ErrorsThrow)
{
    EXPECT_THROW(tokenize("\"unterminated"), LexError);
    EXPECT_THROW(tokenize("/* unterminated"), LexError);
    EXPECT_THROW(tokenize("@"), LexError);
    EXPECT_THROW(tokenize("\"bad\\qescape\""), LexError);
}

TEST(Lexer, EofAlwaysLast)
{
    auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokKind::Eof);
}
