/** @file Golden-snapshot tests for the bytecode compiler: disassembly
 *  of representative functions is compared against checked-in
 *  expectations in tests/golden/, so codegen drift shows up as a
 *  reviewable diff instead of a silent perf/semantics change.
 *
 *  To refresh after an intentional compiler change:
 *      VSPEC_UPDATE_GOLDEN=1 ./vspec_tests --gtest_filter='BytecodeGolden*'
 *  and commit the updated .golden files. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runtime/engine.hh"

using namespace vspec;

namespace
{

/** Fixture program: one function per speculation-relevant shape. */
const char *kFixtureSource = R"JS(
function sumLoop(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1)
        s = (s + i) | 0;
    return s;
}
function getPoint(p) {
    return p.x + p.y;
}
function dotProduct(a, b, n) {
    var s = 0.0;
    for (var i = 0; i < n; i = i + 1)
        s = s + a[i] * b[i];
    return s;
}
function countChar(s, code) {
    var n = 0;
    for (var i = 0; i < s.length; i = i + 1)
        if (s.charCodeAt(i) == code)
            n = n + 1;
    return n;
}
function clamp(v, lo, hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}
function makeRect(w, h) {
    var r = { w: w, h: h, area: 0 };
    r.area = w * h;
    return r;
}
function bench() { return 0; }
function verify() { return 0; }
)JS";

const char *const kGoldenFunctions[] = {
    "sumLoop", "getPoint", "dotProduct", "countChar", "clamp", "makeRect",
};

std::string
goldenDir()
{
    return std::string(VSPEC_TEST_SRC_DIR) + "/golden";
}

std::string
goldenPath(const std::string &fn)
{
    return goldenDir() + "/" + fn + ".golden";
}

bool
updateMode()
{
    const char *env = std::getenv("VSPEC_UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

class BytecodeGolden : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BytecodeGolden, DisassemblyMatchesGolden)
{
    const std::string fn = GetParam();

    Engine engine;
    engine.loadProgram(kFixtureSource);
    FunctionId id = engine.functions.idOf(fn);
    ASSERT_NE(id, kInvalidFunction) << fn;
    std::string actual = engine.functions.at(id).disassemble(engine.vm);

    std::string path = goldenPath(fn);
    if (updateMode()) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "updated " << path;
    }

    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << " — regenerate with VSPEC_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, expected)
        << "bytecode for " << fn << " drifted from " << path
        << "; if intentional, regenerate with VSPEC_UPDATE_GOLDEN=1";
}

INSTANTIATE_TEST_SUITE_P(Fixture, BytecodeGolden,
                         ::testing::ValuesIn(kGoldenFunctions),
                         [](const ::testing::TestParamInfo<const char *> &i) {
                             return std::string(i.param);
                         });

/** The disassembly itself is deterministic across engines, so golden
 *  comparisons cannot flake. */
TEST(BytecodeGoldenMeta, DisassemblyIsDeterministic)
{
    Engine a;
    a.loadProgram(kFixtureSource);
    Engine b;
    b.loadProgram(kFixtureSource);
    for (const char *fn : kGoldenFunctions) {
        FunctionId ia = a.functions.idOf(fn);
        FunctionId ib = b.functions.idOf(fn);
        ASSERT_NE(ia, kInvalidFunction);
        EXPECT_EQ(a.functions.at(ia).disassemble(a.vm),
                  b.functions.at(ib).disassemble(b.vm));
    }
}
