/** @file vregalloc tests: the linear-scan allocator under artificial
 *  register pressure (EngineConfig::maxGprs/maxFprs), the allocation
 *  verifier, and loop back-edge detection through a Branch's *false*
 *  successor (a latch shape the old succTrue-only scan missed). */

#include <gtest/gtest.h>

#include "backend/regalloc.hh"
#include "ir/passes.hh"
#include "runtime/engine.hh"
#include "support/fuzz_gen.hh"
#include "verify/verify.hh"

using namespace vspec;

namespace
{

struct PressureRun
{
    std::string checksum;
    u64 deopts = 0;
    u64 compiles = 0;
    u64 cycles = 0;
    u64 spills = 0;
    u64 spillSlots = 0;
};

PressureRun
runProgram(const std::string &source, bool optimize, u32 iterations,
           u8 max_gprs = 0, u8 max_fprs = 0)
{
    EngineConfig cfg;
    cfg.enableOptimization = optimize;
    cfg.samplerEnabled = false;
    cfg.heapSize = 8u << 20;
    cfg.maxGprs = max_gprs;
    cfg.maxFprs = max_fprs;
    // Force the allocation verifier on for every compile in this file.
    cfg.passes.verifyLevel = VerifyLevel::Final;
    Engine engine(cfg);
    engine.loadProgram(source);
    for (u32 i = 0; i < iterations; i++)
        engine.call("bench");
    PressureRun r;
    r.checksum = engine.vm.display(engine.call("verify"));
    r.deopts = engine.deoptLog.size();
    r.compiles = engine.compilations;
    r.cycles = engine.totalCycles();
    r.spills = engine.trace.counters.get(TraceCounter::RegallocSpills);
    r.spillSlots =
        engine.trace.counters.get(TraceCounter::RegallocSpillSlots);
    return r;
}

/** 26 simultaneously-live non-constant values (constants would be
 *  rematerialized, not allocated) — spills at any pool size. */
const char *kPressureKernel = R"JS(
var seed = 3;
function bench() {
    var a1 = seed + 1; var a2 = a1 + 1; var a3 = a2 + 1;
    var a4 = a3 + 1; var a5 = a4 + 1; var a6 = a5 + 1;
    var a7 = a6 + 1; var a8 = a7 + 1; var a9 = a8 + 1;
    var a10 = a9 + 1; var a11 = a10 + 1; var a12 = a11 + 1;
    var a13 = a12 + 1; var a14 = a13 + 1; var a15 = a14 + 1;
    var a16 = a15 + 1; var a17 = a16 + 1; var a18 = a17 + 1;
    var a19 = a18 + 1; var a20 = a19 + 1; var a21 = a20 + 1;
    var a22 = a21 + 1; var a23 = a22 + 1; var a24 = a23 + 1;
    var a25 = a24 + 1; var a26 = a25 + 1;
    var s = 0;
    for (var i = 0; i < 10; i++) {
        s = s + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9 + a10
              + a11 + a12 + a13 + a14 + a15 + a16 + a17 + a18 + a19
              + a20 + a21 + a22 + a23 + a24 + a25 + a26;
        a1 = a1 + 1; a13 = a13 + 1; a26 = a26 + 1;
    }
    return s;
}
function verify() { return bench(); }
)JS";

} // namespace

TEST(RegallocPressure, FuzzProgramsAgreeAtShrunkPools)
{
    // Differential oracle under pressure: for generated programs, a
    // JIT starved down to 3 GPRs must still (a) match the interpreter
    // checksum bit for bit, (b) fire exactly the deopts the full-pool
    // JIT fires (allocation must never change speculation outcomes),
    // all with the allocation verifier enabled on every compile.
    constexpr u64 kPrograms = 40;
    constexpr u32 kIterations = 6;  // past tier-up, deopt, reopt
    struct Pool { u8 gprs, fprs; };
    constexpr Pool kPools[] = {{3, 0}, {4, 2}, {6, 0}, {8, 4}};

    for (u64 seed = 1; seed <= kPrograms; seed++) {
        std::string source = generateFuzzProgram(seed);
        PressureRun interp, full;
        ASSERT_NO_THROW({
            interp = runProgram(source, false, kIterations);
        }) << "seed " << seed << "\n" << source;
        ASSERT_NO_THROW({
            full = runProgram(source, true, kIterations);
        }) << "seed " << seed << "\n" << source;
        ASSERT_EQ(full.checksum, interp.checksum)
            << "seed " << seed << "\n" << source;
        for (const Pool &pool : kPools) {
            PressureRun tight;
            ASSERT_NO_THROW({
                tight = runProgram(source, true, kIterations,
                                   pool.gprs, pool.fprs);
            }) << "seed " << seed << " gprs " << int(pool.gprs)
               << "\n" << source;
            ASSERT_EQ(tight.checksum, interp.checksum)
                << "seed " << seed << " gprs " << int(pool.gprs)
                << "\n" << source;
            ASSERT_EQ(tight.deopts, full.deopts)
                << "seed " << seed << " gprs " << int(pool.gprs)
                << "\n" << source;
            ASSERT_EQ(tight.compiles, full.compiles)
                << "seed " << seed << " gprs " << int(pool.gprs)
                << "\n" << source;
        }
    }
}

TEST(RegallocPressure, ShrunkPoolForcesSpillsAndStaysCorrect)
{
    PressureRun interp = runProgram(kPressureKernel, false, 5);
    PressureRun tight = runProgram(kPressureKernel, true, 5, 3, 0);
    EXPECT_EQ(tight.checksum, interp.checksum);
    // 27 live values across 3 registers: the spill machinery and its
    // trace counters must both engage.
    EXPECT_GT(tight.spills, 0u);
    EXPECT_GT(tight.spillSlots, 0u);
}

TEST(RegallocKnob, DefaultIsFullPoolAndExplicitZeroIsIdentical)
{
    // The knob defaults off (tests never export VSPEC_MAX_GPRS): a
    // default-constructed config and an explicit 0/0 must produce
    // bit-identical cycles and results.
    EngineConfig def;
    ASSERT_EQ(def.maxGprs, 0);
    ASSERT_EQ(def.maxFprs, 0);
    PressureRun a = runProgram(kPressureKernel, true, 5);
    PressureRun b = runProgram(kPressureKernel, true, 5, 0, 0);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.spills, b.spills);
}

namespace
{

/**
 * Hand-built CFG whose loop latch re-enters the header through the
 * Branch's *false* successor (an inverted loop condition):
 *
 *   b0: p0 = Param, v1..v6 = add chain, Goto b1
 *   b1: s = Phi(p0, s6), s1..s6 = s + v_k, cmp, Branch(b2, b1)
 *   b2: Return s6
 *
 * Every v_k is live across the back edge, so a 3-register pool forces
 * spilling *inside* the loop.
 */
struct FalseBackEdgeGraph
{
    Graph g;
    BlockId b0, b1, b2;
    ValueId param = kNoValue;
    ValueId check = kNoValue;  //!< set by addHeaderCheck

    explicit FalseBackEdgeGraph(bool with_check = false)
    {
        b0 = g.newBlock();
        b1 = g.newBlock();
        b2 = g.newBlock();

        auto n = [&](IrOp op, Rep rep, std::vector<ValueId> inputs) {
            IrNode node;
            node.op = op;
            node.rep = rep;
            node.inputs = std::move(inputs);
            return node;
        };

        param = g.append(b0, n(IrOp::Param, Rep::Int32, {}));
        std::vector<ValueId> vs;
        ValueId prev = param;
        for (int i = 0; i < 6; i++) {
            prev = g.append(b0, n(IrOp::I32Add, Rep::Int32,
                                  {prev, param}));
            vs.push_back(prev);
        }
        g.append(b0, n(IrOp::Goto, Rep::None, {}));
        g.block(b0).succTrue = b1;

        ValueId phi = g.append(b1, n(IrOp::Phi, Rep::Int32, {}));
        if (with_check) {
            // Loop-invariant CheckSmi on the (pre-loop) param: the
            // hoist pass must pull it into b0.
            IrNode c = n(IrOp::CheckSmi, Rep::Int32, {param});
            c.reason = DeoptReason::NotASmi;
            check = g.append(b1, c);
        }
        ValueId s = phi;
        for (ValueId v : vs)
            s = g.append(b1, n(IrOp::I32Add, Rep::Int32, {s, v}));
        IrNode cmp = n(IrOp::I32Compare, Rep::Bool, {s, param});
        cmp.cond = Cond::Lt;
        ValueId cond = g.append(b1, cmp);
        g.append(b1, n(IrOp::Branch, Rep::None, {cond}));
        // Back edge through the FALSE successor.
        g.block(b1).succTrue = b2;
        g.block(b1).succFalse = b1;
        g.node(phi).inputs = {param, s};

        g.append(b2, n(IrOp::Return, Rep::None, {s}));

        g.block(b1).preds = {b0, b1};
        g.block(b2).preds = {b1};
        g.block(b1).isLoopHeader = true;
        g.headerFrameStates[b1] = g.addFrameState(FrameState{});
    }
};

} // namespace

TEST(RegallocLoops, HoistDetectsBranchFalseBackEdge)
{
    // Regression: loop detection that only scans succTrue classifies
    // this CFG as loop-free and hoists nothing.
    FalseBackEdgeGraph fg(/*with_check=*/true);
    u32 hoisted = hoistLoopInvariantChecks(fg.g);
    EXPECT_EQ(hoisted, 1u);
    EXPECT_EQ(fg.g.node(fg.check).block, fg.b0);
    bool in_preheader = false;
    for (ValueId id : fg.g.block(fg.b0).nodes)
        if (id == fg.check)
            in_preheader = true;
    EXPECT_TRUE(in_preheader);
}

TEST(RegallocLoops, BranchFalseBackEdgeAllocatesCleanly)
{
    // The allocator's own loop detection (spill-cost depth weights)
    // shares the both-successor scan; under a 3-register pool this CFG
    // must spill, verify cleanly, and keep loop-carried values sane.
    FalseBackEdgeGraph fg;
    std::vector<BlockId> order = {fg.b0, fg.b1, fg.b2};
    RegallocOptions opt;
    opt.maxGprs = 3;
    AllocationResult ra = allocateRegisters(fg.g, order, opt);
    EXPECT_GT(ra.stats.spilledIntervals, 0u);
    VerifyResult v = verifyAllocation(fg.g, order, ra);
    EXPECT_TRUE(v.ok()) << v.str();
}

TEST(RegallocVerifier, FlagsTamperedAllocation)
{
    FalseBackEdgeGraph fg;
    std::vector<BlockId> order = {fg.b0, fg.b1, fg.b2};
    RegallocOptions opt;
    opt.maxGprs = 3;
    AllocationResult ra = allocateRegisters(fg.g, order, opt);
    ASSERT_TRUE(verifyAllocation(fg.g, order, ra).ok());

    // Collapse every register segment onto r0: simultaneously-live
    // values now collide, which allocation-unique must flag.
    AllocationResult bad = ra;
    for (LiveSegment &seg : bad.segs)
        if (seg.loc.where == Allocation::Where::Reg)
            seg.loc.reg = 0;
    VerifyResult v = verifyAllocation(fg.g, order, bad);
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(v.has("allocation-unique")) << v.str();

    // Erase the Return input's location entirely: a use with no live
    // location.
    AllocationResult none = ra;
    ValueId ret_in = kNoValue;
    for (ValueId id : fg.g.block(fg.b2).nodes)
        ret_in = fg.g.node(id).inputs.at(0);
    ASSERT_NE(ret_in, kNoValue);
    for (u32 i = none.segIndex[ret_in]; i < none.segIndex[ret_in + 1];
         i++)
        none.segs[i].loc = Allocation{};
    VerifyResult v2 = verifyAllocation(fg.g, order, none);
    EXPECT_FALSE(v2.ok());
}
