/**
 * @file
 * Tests for the vproof abstract interpreter (ir/absint) and the
 * ProveChecks pass (ir/proof): lattice algebra on every domain,
 * loop widening that keeps stable bounds, the same-origin join rule,
 * check classification on real graphs, static elimination, and the
 * verifier's elided-check-proof invariant.
 */

#include <gtest/gtest.h>

#include "ir/absint.hh"
#include "ir/builder.hh"
#include "ir/passes.hh"
#include "ir/proof.hh"
#include "runtime/engine.hh"
#include "verify/verify.hh"

using namespace vspec;

namespace
{

struct Built
{
    std::unique_ptr<Engine> engine;
    std::optional<Graph> graph;
};

Built
buildFor(const std::string &src)
{
    Built b;
    EngineConfig cfg;
    cfg.enableOptimization = false;
    b.engine = std::make_unique<Engine>(cfg);
    b.engine->loadProgram(src);
    for (int i = 0; i < 3; i++)
        b.engine->call("bench");
    CompilerEnv env{b.engine->vm, b.engine->globals, b.engine->functions};
    FunctionInfo &fn =
        b.engine->functions.at(b.engine->functions.idOf("bench"));
    b.graph = buildGraph(env, fn);
    return b;
}

u32
liveChecks(const Graph &g)
{
    u32 n = 0;
    for (const auto &node : g.nodes)
        if (!node.dead && node.isCheck())
            n++;
    return n;
}

/** Same element read twice with a dominating first access: the second
 *  access's checks sit past a branch merge, out of reach of per-block
 *  value numbering, but the first access's checks dominate them. */
const char *kDominatedRereads = R"JS(
var a = [];
function setup() { for (var i = 0; i < 16; i++) { a.push(i % 7); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 16; i++) {
        var x = a[i];
        if (x > 3) { s = s + 1; }
        s = (s + a[i]) % 1024;
    }
    return s;
}
)JS";

} // namespace

// --------------------------------------------------------------------
// Lattice algebra
// --------------------------------------------------------------------

TEST(AbsintLattice, TagJoinAndMeet)
{
    EXPECT_EQ(joinTag(TagFact::Smi, TagFact::Smi), TagFact::Smi);
    EXPECT_EQ(joinTag(TagFact::Smi, TagFact::Heap), TagFact::Top);
    EXPECT_EQ(joinTag(TagFact::Bottom, TagFact::Heap), TagFact::Heap);
    EXPECT_EQ(joinTag(TagFact::Top, TagFact::Smi), TagFact::Top);

    EXPECT_EQ(meetTag(TagFact::Top, TagFact::Smi), TagFact::Smi);
    EXPECT_EQ(meetTag(TagFact::Smi, TagFact::Heap), TagFact::Bottom);
    EXPECT_EQ(meetTag(TagFact::Smi, TagFact::Smi), TagFact::Smi);
    EXPECT_EQ(meetTag(TagFact::Bottom, TagFact::Top), TagFact::Bottom);
}

TEST(AbsintLattice, RangeJoinAndMeet)
{
    RangeFact a = RangeFact::of(0, 5);
    RangeFact b = RangeFact::of(3, 10);
    EXPECT_EQ(joinRange(a, b), RangeFact::of(0, 10));
    EXPECT_EQ(meetRange(a, b), RangeFact::of(3, 5));

    // Disjoint meet is bottom; bottom is absorbing for meet, identity
    // for join.
    RangeFact c = RangeFact::of(100, 200);
    EXPECT_TRUE(meetRange(a, c).isBottom());
    EXPECT_EQ(joinRange(RangeFact::bottom(), a), a);
    EXPECT_TRUE(meetRange(RangeFact::bottom(), a).isBottom());

    EXPECT_TRUE(RangeFact::constant(7).isConstant());
    EXPECT_EQ(joinRange(RangeFact::constant(7), RangeFact::constant(7)),
              RangeFact::constant(7));
}

TEST(AbsintLattice, RangeWideningKeepsStableBounds)
{
    // Satellite requirement: a growing upper bound widens to top, but
    // the stable lower bound survives — exactly the "i >= 0 inside the
    // loop" fact ProveChecks needs for bounds proofs.
    RangeFact prev = RangeFact::of(0, 5);
    RangeFact grew = RangeFact::of(0, 9);
    RangeFact w = widenRange(prev, grew);
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, RangeFact::kMax);

    // Both bounds stable: widening is the identity.
    EXPECT_EQ(widenRange(prev, prev), prev);

    // A shrinking lower bound widens downwards only.
    RangeFact sank = RangeFact::of(-3, 5);
    RangeFact w2 = widenRange(prev, sank);
    EXPECT_EQ(w2.lo, RangeFact::kMin);
    EXPECT_EQ(w2.hi, 5);
}

TEST(AbsintLattice, RangeWideningLoopConverges)
{
    // Emulate the loop-header fixpoint for `for (i = 0; ...; i++)`:
    // each round the body contributes [prev.lo, prev.hi + 1].
    RangeFact at_header = RangeFact::constant(0);
    int rounds = 0;
    for (; rounds < 8; rounds++) {
        RangeFact body = RangeFact::of(at_header.lo, at_header.hi + 1);
        RangeFact next = widenRange(at_header, joinRange(at_header, body));
        if (next == at_header)
            break;
        at_header = next;
    }
    EXPECT_LT(rounds, 4);               // widening forces fast convergence
    EXPECT_EQ(at_header.lo, 0);         // the provable fact survived
    EXPECT_EQ(at_header.hi, RangeFact::kMax);
}

TEST(AbsintLattice, MapJoinAndMeet)
{
    MapFact m3 = MapFact::exactly(3);
    MapFact m4 = MapFact::exactly(4);

    EXPECT_TRUE(joinMaps(m3, m3).isExactly(3));
    MapFact u = joinMaps(m3, m4);
    EXPECT_FALSE(u.isTop());
    EXPECT_EQ(u.maps, (std::vector<u32>{3, 4}));

    EXPECT_TRUE(meetMaps(u, m3).isExactly(3));
    EXPECT_TRUE(meetMaps(m3, m4).isBottom());
    EXPECT_TRUE(joinMaps(MapFact::topFact(), m3).isTop());
    EXPECT_TRUE(meetMaps(MapFact::topFact(), m3).isExactly(3));
    EXPECT_TRUE(joinMaps(MapFact::bottomFact(), m3).isExactly(3));
}

TEST(AbsintLattice, ConstJoinAndMeet)
{
    ConstFact k7 = ConstFact::known(7);
    ConstFact k9 = ConstFact::known(9);
    EXPECT_EQ(joinConst(k7, k7), k7);
    EXPECT_TRUE(joinConst(k7, k9).isTop());
    EXPECT_EQ(meetConst(ConstFact::top(), k7), k7);
    EXPECT_TRUE(meetConst(k7, k9).isBottom());
    EXPECT_EQ(joinConst(ConstFact::bottom(), k7), k7);
}

TEST(AbsintLattice, ProductValueComposition)
{
    AbsValue a;
    a.tag = TagFact::Smi;
    a.range = RangeFact::of(0, 10);
    AbsValue b;
    b.tag = TagFact::Smi;
    b.range = RangeFact::of(5, 20);
    b.maps = MapFact::exactly(2);

    AbsValue j = joinValue(a, b);
    EXPECT_EQ(j.tag, TagFact::Smi);
    EXPECT_EQ(j.range, RangeFact::of(0, 20));
    EXPECT_TRUE(j.maps.isTop());        // exactly(2) ∪ ⊤ = ⊤

    AbsValue m = meetValue(a, b);
    EXPECT_EQ(m.range, RangeFact::of(5, 10));
    EXPECT_TRUE(m.maps.isExactly(2));

    // Widen: range widens per-bound, finite domains join.
    AbsValue w = widenValue(a, j);
    EXPECT_EQ(w.tag, TagFact::Smi);
    EXPECT_EQ(w.range.lo, 0);
    EXPECT_EQ(w.range.hi, RangeFact::kMax);
}

TEST(AbsintLattice, StateJoinRequiresSameOrigin)
{
    // Identical fact, identical origin: survives the merge.
    Refinement r;
    r.tag = TagFact::Smi;
    r.tagOrigin = 7;
    AbsState a, b;
    a.refine[3] = r;
    b.refine[3] = r;
    AbsState j = joinState(a, b);
    ASSERT_EQ(j.refine.count(3), 1u);
    EXPECT_EQ(j.refine[3].tag, TagFact::Smi);

    // Identical fact, different origin (a check per branch): dropped —
    // neither origin dominates the merge.
    Refinement r2 = r;
    r2.tagOrigin = 9;
    b.refine[3] = r2;
    AbsState j2 = joinState(a, b);
    EXPECT_TRUE(j2.refine.count(3) == 0 || j2.refine[3].isTop());

    // boundsPassed intersects on the premise check too.
    a.boundsPassed[{1, 2}] = 5;
    b.boundsPassed[{1, 2}] = 5;
    b.boundsPassed[{1, 4}] = 6;
    AbsState j3 = joinState(a, b);
    EXPECT_EQ(j3.boundsPassed.count({1, 2}), 1u);
    EXPECT_EQ(j3.boundsPassed.count({1, 4}), 0u);
}

// --------------------------------------------------------------------
// The interpreter on real graphs
// --------------------------------------------------------------------

TEST(Absint, ConvergesOnLoopGraph)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());

    AbsInterpreter ai(*b.graph);
    ai.run();
    EXPECT_TRUE(ai.converged());
    EXPECT_TRUE(ai.blockReachable(0));

    // Structural facts: every ConstI32 is a constant range; every
    // TagSmi result is a Smi within SMI payload range.
    for (ValueId id = 0; id < b.graph->nodes.size(); id++) {
        const IrNode &n = b.graph->nodes[id];
        if (n.dead)
            continue;
        if (n.op == IrOp::ConstI32) {
            EXPECT_TRUE(ai.structural(id).range.isConstant())
                << "ConstI32 v" << id;
        }
        if (n.op == IrOp::TagSmi) {
            EXPECT_EQ(ai.structural(id).tag, TagFact::Smi)
                << "TagSmi v" << id;
            EXPECT_GE(ai.structural(id).range.lo, RangeFact::smi().lo);
            EXPECT_LE(ai.structural(id).range.hi, RangeFact::smi().hi);
        }
    }
}

// --------------------------------------------------------------------
// ProveChecks classification and elimination
// --------------------------------------------------------------------

TEST(ProveChecks, ClassifiesDominatedRereadsAsProven)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());

    ProofStats stats = proveChecks(*b.graph, /*eliminate=*/false);
    EXPECT_GE(stats.totalChecks(), 4u);
    // The merged-block re-read's checks are dominated by the first
    // access's checks — at least one must be proven redundant.
    EXPECT_GE(stats.totalProven(), 1u);
    // Checks on fresh loads can never all be proven.
    EXPECT_LT(stats.totalProven(), stats.totalChecks());
    // Classification alone never mutates the graph.
    EXPECT_EQ(stats.elided, 0u);
    for (const CheckProof &p : b.graph->proofs) {
        EXPECT_FALSE(p.elided);
        if (p.cls == CheckClass::ProvenRedundant) {
            EXPECT_NE(p.rule, ProofRule::None);
            EXPECT_FALSE(p.premises.empty());
        }
    }
}

TEST(ProveChecks, StaticElimDeletesExactlyTheProvenChecks)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());
    Graph &g = *b.graph;

    u32 before = liveChecks(g);
    ProofStats stats = proveChecks(g, /*eliminate=*/true);
    EXPECT_GE(stats.elided, 1u);
    EXPECT_EQ(stats.elided, stats.totalProven());
    EXPECT_EQ(liveChecks(g), before - stats.elided);

    // Every elided check is a dead passthrough with a proof whose
    // premises are live and dominate it — the verifier's new invariant.
    VerifyResult r = verifyGraph(g, "after proveChecks(eliminate)");
    EXPECT_TRUE(r.ok()) << r.str();

    for (const CheckProof &p : g.proofs) {
        if (!p.elided)
            continue;
        const IrNode &n = g.nodes[p.check];
        EXPECT_TRUE(n.dead);
        EXPECT_TRUE(n.provenElided);
        EXPECT_EQ(n.inputs.size(), 1u);
        for (ValueId prem : p.premises) {
            const IrNode &pn = g.nodes[prem];
            EXPECT_TRUE(!pn.isCheck() || !pn.dead)
                << "premise v" << prem << " is a dead check";
        }
    }
}

TEST(ProveChecks, FullPipelineStaticElimVerifies)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());

    PassConfig cfg;
    cfg.staticElim = true;
    cfg.verifyLevel = VerifyLevel::Passes;  // verify between every pass
    PassStats stats = runPasses(*b.graph, cfg);
    EXPECT_GE(stats.proof.elided, 1u);
    VerifyResult r = verifyGraph(*b.graph, "after full pipeline");
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(ProveChecks, VerifierRejectsTamperedProof)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());
    Graph &g = *b.graph;
    ProofStats stats = proveChecks(g, /*eliminate=*/true);
    ASSERT_GE(stats.elided, 1u);

    // Empty out one elided proof's premises: the "deleted because
    // proven" claim is now unsubstantiated and must not verify.
    for (CheckProof &p : g.proofs) {
        if (p.elided) {
            p.premises.clear();
            break;
        }
    }
    VerifyResult r = verifyGraph(g, "tampered");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("elided-check-proof")) << r.str();
}

TEST(ProveChecks, AuditRowsCoverEveryClassifiedCheck)
{
    auto b = buildFor(kDominatedRereads);
    ASSERT_TRUE(b.graph.has_value());
    ProofStats stats = proveChecks(*b.graph, /*eliminate=*/false);

    const FunctionInfo &fn =
        b.engine->functions.at(b.engine->functions.idOf("bench"));
    std::vector<CheckAuditEntry> rows;
    appendCheckAudit(*b.graph, fn, rows);

    u32 counted = 0;
    bool has_proven_row = false;
    for (const CheckAuditEntry &e : rows) {
        EXPECT_GE(e.line, 1);           // real source positions
        counted += e.count;
        if (e.cls == CheckClass::ProvenRedundant)
            has_proven_row = true;
    }
    EXPECT_EQ(counted, stats.totalChecks());
    EXPECT_TRUE(has_proven_row);
}
