/** @file vtrace unit + engine-integration tests: categories, the ring,
 *  counters, JSON backends, and the "tracing never touches simulated
 *  cycles" guarantee the figures depend on. */

#include <gtest/gtest.h>

#include "runtime/engine.hh"
#include "support/json.hh"
#include "trace/trace.hh"

using namespace vspec;

TEST(TraceCategories, ParseSpec)
{
    EXPECT_EQ(parseTraceCategories(""), 0u);
    EXPECT_EQ(parseTraceCategories("all"), kAllTraceCategories);
    EXPECT_EQ(parseTraceCategories("1"), kAllTraceCategories);
    EXPECT_EQ(parseTraceCategories("deopt"),
              traceCategoryBit(TraceCategory::Deopt));
    EXPECT_EQ(parseTraceCategories("deopt,tiering"),
              traceCategoryBit(TraceCategory::Deopt)
                  | traceCategoryBit(TraceCategory::Tiering));
    EXPECT_EQ(parseTraceCategories(" compile , gc "),
              traceCategoryBit(TraceCategory::Compile)
                  | traceCategoryBit(TraceCategory::Gc));
    // Unknown names degrade to "nothing extra", not a crash.
    EXPECT_EQ(parseTraceCategories("bogus"), 0u);
    EXPECT_EQ(parseTraceCategories("bogus,exec"),
              traceCategoryBit(TraceCategory::Exec));
}

TEST(TraceRing, WrapKeepsNewestAndCountsDrops)
{
    TraceRing ring(4);  // rounds to 4
    EXPECT_EQ(ring.capacity(), 4u);
    for (u32 i = 0; i < 10; i++) {
        TraceEvent e;
        e.a = i;
        ring.push(e);
    }
    EXPECT_EQ(ring.written(), 10u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    std::vector<u32> seen;
    ring.forEach([&](const TraceEvent &e) { seen.push_back(e.a); });
    EXPECT_EQ(seen, (std::vector<u32>{6, 7, 8, 9}));
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    TraceRing ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceCounters, FixedReasonAndSiteCounters)
{
    CounterRegistry c;
    c.add(TraceCounter::Compilations);
    c.add(TraceCounter::Compilations, 2);
    EXPECT_EQ(c.get(TraceCounter::Compilations), 3u);

    c.add(TraceCounter::DeoptsEager);
    c.add(TraceCounter::DeoptsLazy, 2);
    c.addDeopt(DeoptReason::NotASmi);
    c.addDeopt(DeoptReason::NotASmi);
    c.addDeopt(DeoptReason::WrongMap);
    EXPECT_EQ(c.deoptsForReason(DeoptReason::NotASmi), 2u);
    EXPECT_EQ(c.totalDeopts(), 3u);

    c.addCheckSiteHit(7, 3);
    c.addCheckSiteHit(7, 3);
    c.addCheckSiteHit(8, 0);
    EXPECT_EQ(c.get(TraceCounter::CheckSiteDeoptHits), 3u);
    EXPECT_EQ(c.checkSiteHits.at((7ull << 16) | 3), 2u);

    c.reset();
    EXPECT_EQ(c.get(TraceCounter::Compilations), 0u);
    EXPECT_EQ(c.totalDeopts(), 0u);
    EXPECT_TRUE(c.checkSiteHits.empty());
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.anyEnabled());
    EXPECT_FALSE(t.on(TraceCategory::Deopt));
    // Unguarded emit is a safe no-op.
    t.emit(TraceCategory::Deopt, TraceEventKind::Instant, "x", 1);
    EXPECT_EQ(t.eventCount(TraceCategory::Deopt), 0u);
    EXPECT_EQ(t.ring.written(), 0u);
}

TEST(Tracer, JsonBackendsValidate)
{
    TraceConfig cfg;
    cfg.categories = kAllTraceCategories;
    Tracer t(cfg);
    t.emit(TraceCategory::Compile, TraceEventKind::Begin, "inline", 10, 1,
           42);
    t.emit(TraceCategory::Compile, TraceEventKind::End, "inline", 25, 1,
           40);
    t.emit(TraceCategory::Deopt, TraceEventKind::Instant, "wrong-map", 30,
           1, 7, 2);
    t.counters.add(TraceCounter::Compilations);
    t.counters.addDeopt(DeoptReason::WrongMap);

    std::string err;
    JsonValue trace_doc;
    ASSERT_TRUE(parseJson(t.chromeTraceJson(), trace_doc, err)) << err;
    const JsonValue *events = trace_doc.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 3u);
    EXPECT_EQ(events->array[2].get("ph")->string, "i");
    EXPECT_EQ(events->array[2].get("name")->string, "wrong-map");
    EXPECT_EQ(events->array[2].get("cat")->string, "deopt");

    JsonValue metrics;
    ASSERT_TRUE(parseJson(t.metricsJson(), metrics, err)) << err;
    EXPECT_EQ(metrics.at({"counters", "compilations"})->asU64(), 1u);
    EXPECT_EQ(metrics.at({"events", "recorded"})->asU64(), 3u);
}

TEST(Tracer, EngineEmitsAcrossCategories)
{
    EngineConfig cfg;
    cfg.trace.categories = kAllTraceCategories;
    Engine engine(cfg);
    engine.loadProgram(R"JS(
var acc = 0;
function work(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1)
        s = (s + i * 3) | 0;
    return s;
}
function bench() { acc = (acc + work(200)) | 0; return acc; }
)JS");
    for (int i = 0; i < 6; i++)
        engine.call("bench");

    EXPECT_GT(engine.trace.eventCount(TraceCategory::Exec), 0u);
    EXPECT_GT(engine.trace.eventCount(TraceCategory::Compile), 0u);
    EXPECT_GT(engine.trace.eventCount(TraceCategory::Tiering), 0u);
    EXPECT_GT(engine.trace.counters.get(TraceCounter::Compilations), 0u);
    EXPECT_GT(engine.trace.counters.get(TraceCounter::Invocations), 0u);
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::Compilations),
              engine.compilations);

    std::string err;
    ASSERT_TRUE(jsonIsValid(engine.trace.chromeTraceJson(), &err)) << err;
    ASSERT_TRUE(jsonIsValid(engine.trace.metricsJson(), &err)) << err;
}

TEST(Tracer, DeoptEventsMatchEngineLog)
{
    EngineConfig cfg;
    cfg.trace.categories = traceCategoryBit(TraceCategory::Deopt);
    Engine engine(cfg);
    // Rotating object shapes through a hot monomorphic load site forces
    // WrongMap deopts once the JIT has speculated.
    engine.loadProgram(R"JS(
var items = [];
function makeA(v) { return { a: v }; }
function makeB(v) { return { b: 0, a: v }; }
function get(o) { return o.a; }
function fill(kind) {
    items = [];
    for (var i = 0; i < 16; i = i + 1) {
        if (kind == 0) { items.push(makeA(i)); }
        else { items.push(makeB(i)); }
    }
}
function bench() {
    var s = 0;
    for (var i = 0; i < items.length; i = i + 1)
        s = (s + get(items[i])) | 0;
    return s;
}
)JS");
    engine.call("fill", {Value::smi(0)});
    for (int i = 0; i < 4; i++)
        engine.call("bench");
    engine.call("fill", {Value::smi(1)});
    for (int i = 0; i < 4; i++)
        engine.call("bench");

    EXPECT_GE(engine.deoptLog.size(), 1u);
    EXPECT_EQ(engine.trace.eventCount(TraceCategory::Deopt),
              engine.deoptLog.size());
    EXPECT_EQ(engine.trace.counters.totalDeopts(),
              engine.deoptLog.size());
    // The per-reason histogram must agree with the engine's own log.
    u64 by_reason[kNumDeoptReasons] = {};
    for (const auto &d : engine.deoptLog)
        by_reason[static_cast<u32>(d.reason)]++;
    for (u32 r = 0; r < kNumDeoptReasons; r++)
        EXPECT_EQ(engine.trace.counters.byReason[r], by_reason[r])
            << deoptReasonName(static_cast<DeoptReason>(r));
}

TEST(Tracer, DisabledTracingLeavesCyclesBitIdentical)
{
    auto run = [](u32 categories) {
        EngineConfig cfg;
        cfg.trace.categories = categories;
        Engine engine(cfg);
        engine.loadProgram(R"JS(
var acc = 0;
function bench() {
    var s = 0;
    for (var i = 0; i < 300; i = i + 1)
        s = (s + i * 7) | 0;
    acc = (acc + s) | 0;
    return acc;
}
)JS");
        for (int i = 0; i < 8; i++)
            engine.call("bench");
        return engine.totalCycles();
    };
    // Tracing is host-side observation: enabling every category must
    // not move a single simulated cycle.
    EXPECT_EQ(run(0), run(kAllTraceCategories));
}

TEST(Tracer, WriteFilesProducesValidJson)
{
    TraceConfig cfg;
    cfg.categories = kAllTraceCategories;
    cfg.outPath = ::testing::TempDir() + "vtrace-test";
    Tracer t(cfg);
    t.emit(TraceCategory::Gc, TraceEventKind::Instant, "gc", 5);
    ASSERT_TRUE(t.writeFiles("unit/label"));

    auto slurp = [](const std::string &path) {
        FILE *f = fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        std::string s;
        char buf[4096];
        size_t n;
        while (f != nullptr && (n = fread(buf, 1, sizeof(buf), f)) > 0)
            s.append(buf, n);
        if (f != nullptr)
            fclose(f);
        return s;
    };
    std::string base = cfg.outPath + "-unit_label";
    std::string err;
    EXPECT_TRUE(jsonIsValid(slurp(base + ".trace.json"), &err)) << err;
    EXPECT_TRUE(jsonIsValid(slurp(base + ".metrics.json"), &err)) << err;
}
