/** @file Tests for the speculative graph builder. */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "runtime/engine.hh"

using namespace vspec;

namespace
{

/** Warm a program in the interpreter, then build bench()'s graph. */
struct Built
{
    std::unique_ptr<Engine> engine;
    std::optional<Graph> graph;
};

Built
buildFor(const std::string &src, const char *fn_name = "bench",
         int warmup = 3)
{
    Built b;
    EngineConfig cfg;
    cfg.enableOptimization = false;  // warm feedback, no codegen
    b.engine = std::make_unique<Engine>(cfg);
    b.engine->loadProgram(src);
    for (int i = 0; i < warmup; i++)
        b.engine->call(fn_name);
    CompilerEnv env{b.engine->vm, b.engine->globals, b.engine->functions};
    FunctionInfo &fn =
        b.engine->functions.at(b.engine->functions.idOf(fn_name));
    b.graph = buildGraph(env, fn);
    return b;
}

u32
countOp(const Graph &g, IrOp op)
{
    u32 n = 0;
    for (const auto &node : g.nodes)
        if (!node.dead && node.op == op)
            n++;
    return n;
}

} // namespace

TEST(IrBuilder, SmiFeedbackProducesCheckedInt32Arithmetic)
{
    auto b = buildFor(R"JS(
function bench() { var s = 0; for (var i = 0; i < 10; i++) { s = s + i; }
return s; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    u32 adds = countOp(*b.graph, IrOp::I32Add);
    EXPECT_GE(adds, 2u);  // s + i, i + 1
    bool any_checked = false;
    for (const auto &n : b.graph->nodes)
        if (!n.dead && n.op == IrOp::I32Add && n.checked)
            any_checked = true;
    EXPECT_TRUE(any_checked);
}

TEST(IrBuilder, NumberFeedbackProducesFloat64Arithmetic)
{
    auto b = buildFor(R"JS(
function bench() { var s = 0.5; for (var i = 0; i < 9; i++) { s = s * 1.5; }
return s; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::F64Mul), 1u);
    EXPECT_EQ(countOp(*b.graph, IrOp::I32Mul), 0u);
}

TEST(IrBuilder, ElementLoadEmitsMapBoundsAndSmiChecks)
{
    auto b = buildFor(R"JS(
var a = [];
function setup() { for (var i = 0; i < 8; i++) { a.push(i); } }
setup();
function bench() { var s = 0; for (var i = 0; i < 8; i++) { s = s + a[i]; }
return s; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::CheckMap), 1u);
    EXPECT_GE(countOp(*b.graph, IrOp::CheckBounds), 1u);
    // Element loads from SMI arrays produce tagged values that are
    // Not-a-SMI-checked before untagging (the paper's Fig. 3 pattern).
    EXPECT_GE(countOp(*b.graph, IrOp::CheckSmi), 1u);
    EXPECT_GE(countOp(*b.graph, IrOp::UntagSmi), 1u);
    EXPECT_GE(countOp(*b.graph, IrOp::LoadElem32), 1u);
}

TEST(IrBuilder, DoubleArrayLoadsAreUnchecked)
{
    auto b = buildFor(R"JS(
var a = [];
function setup() { for (var i = 0; i < 8; i++) { a.push(i + 0.5); } }
setup();
function bench() { var s = 0.0; for (var i = 0; i < 8; i++) { s = s + a[i]; }
return s; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::LoadElemF64), 1u);
}

TEST(IrBuilder, MonomorphicPropertyLoad)
{
    auto b = buildFor(R"JS(
var o = { x: 5, y: 6 };
function bench() { return o.x + o.y; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::LoadField), 2u);
    EXPECT_GE(countOp(*b.graph, IrOp::CheckMap), 1u);
}

TEST(IrBuilder, ColdPathGetsSoftDeopt)
{
    auto b = buildFor(R"JS(
var flag = 0;
function bench(x) {
    if (flag == 1) { return x.never + 1; }
    return 2;
}
)JS");
    ASSERT_TRUE(b.graph.has_value());
    // The never-executed property load has no feedback -> deopt-soft.
    EXPECT_GE(countOp(*b.graph, IrOp::Deopt), 1u);
}

TEST(IrBuilder, KnownCallTargetIsDirect)
{
    auto b = buildFor(R"JS(
function helper(x) { return x + 1; }
function bench() { var s = 0; for (var i = 0; i < 5; i++) { s = helper(s); }
return s; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::CallFunction), 1u);
}

TEST(IrBuilder, ConstantGlobalEmbedsAndRecordsDependency)
{
    auto b = buildFor(R"JS(
var K = 41;
function bench() { return K + 1; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_FALSE(b.graph->embeddedGlobalCells.empty());
    EXPECT_EQ(countOp(*b.graph, IrOp::LoadGlobal), 0u);
}

TEST(IrBuilder, MutatedGlobalLoadsFromCell)
{
    auto b = buildFor(R"JS(
var K = 1;
function bench() { K = K + 1; return K; }
)JS");
    ASSERT_TRUE(b.graph.has_value());
    EXPECT_GE(countOp(*b.graph, IrOp::LoadGlobal), 1u);
    EXPECT_GE(countOp(*b.graph, IrOp::StoreGlobal), 1u);
}

TEST(IrBuilder, LoopPhisForLiveVariablesOnly)
{
    auto b = buildFor(R"JS(
function bench() {
    var s = 0;
    for (var i = 0; i < 10; i++) {
        var t = i * 2;
        s = s + t;
    }
    return s;
}
)JS");
    ASSERT_TRUE(b.graph.has_value());
    // s and i need phis; dead expression temps must not.
    u32 phis = 0;
    for (const auto &n : b.graph->nodes)
        if (!n.dead && n.op == IrOp::Phi)
            phis++;
    EXPECT_GE(phis, 2u);
    EXPECT_LE(phis, 5u);
}

TEST(IrBuilder, TooManyParamsBailsOut)
{
    auto b = buildFor(R"JS(
function bench(a, b, c, d, e, f, g, h, i) { return a; }
)JS", "bench", 1);
    EXPECT_FALSE(b.graph.has_value());
}

TEST(IrBuilder, FrameStatesPrunedByLiveness)
{
    auto b = buildFor(R"JS(
function bench(n) {
    var unused = n * 3;
    var s = 0;
    for (var i = 0; i < n; i++) { s = s + 1; }
    return s;
}
)JS");
    ASSERT_TRUE(b.graph.has_value());
    // At least one frame state prunes a dead register to kNoValue.
    bool any_pruned = false;
    for (const auto &fs : b.graph->frameStates) {
        for (ValueId r : fs.regs)
            if (r == kNoValue)
                any_pruned = true;
    }
    EXPECT_TRUE(any_pruned);
}
