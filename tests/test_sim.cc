/** @file Functional-core ISA semantics tests (hand-assembled code). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "sim/machine.hh"

using namespace vspec;

namespace
{

class SimTest : public ::testing::Test
{
  protected:
    SimTest()
        : heap(8u << 20),
          core(heap, [this](RuntimeFn fn, MachineState &st, const MInst &) {
              lastRt = fn;
              st.x[0] = 4242;
          })
    {
    }

    MInst
    ins(MOp op, u8 rd = 0, u8 rn = 0, u8 rm = 0, i64 imm = 0)
    {
        MInst m;
        m.op = op;
        m.rd = rd;
        m.rn = rn;
        m.rm = rm;
        m.imm = imm;
        return m;
    }

    /** Run the instructions followed by Ret; returns x0. */
    u64
    run(std::vector<MInst> code, MachineState &st)
    {
        code.push_back(ins(MOp::Ret));
        CodeObject obj;
        obj.code = std::move(code);
        RunResult r = core.run(obj, st, nullptr, nullptr);
        EXPECT_FALSE(r.deopted);
        return st.x[0];
    }

    Heap heap;
    FunctionalCore core;
    RuntimeFn lastRt = RuntimeFn::CallFunction;
};

} // namespace

TEST_F(SimTest, AluBasics)
{
    MachineState st;
    st.x[1] = 20;
    st.x[2] = 22;
    EXPECT_EQ(run({ins(MOp::Add, 0, 1, 2)}, st), 42u);
    EXPECT_EQ(run({ins(MOp::Sub, 0, 1, 2)}, st),
              static_cast<u64>(static_cast<u32>(-2)));
    EXPECT_EQ(run({ins(MOp::Mul, 0, 1, 2)}, st), 440u);
    EXPECT_EQ(run({ins(MOp::AddI, 0, 1, 0, 100)}, st), 120u);
}

TEST_F(SimTest, ThirtyTwoBitSemantics)
{
    MachineState st;
    st.x[1] = 0x7fffffff;
    st.x[2] = 1;
    // 32-bit add wraps and zero-extends into the 64-bit register.
    EXPECT_EQ(run({ins(MOp::Add, 0, 1, 2)}, st), 0x80000000u);
}

TEST_F(SimTest, AddsSetsOverflowAt32Bits)
{
    MachineState st;
    st.x[1] = 0x40000000;  // 2^30
    std::vector<MInst> code = {ins(MOp::Adds, 0, 1, 1)};
    code.push_back(ins(MOp::Ret));
    CodeObject obj;
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_TRUE(st.flagV);  // 2^30 + 2^30 overflows signed 32-bit
    EXPECT_TRUE(st.flagN);
}

TEST_F(SimTest, SmullAndCmpSxtwDetectMulOverflow)
{
    MachineState st;
    st.x[1] = 100000;
    st.x[2] = 100000;
    std::vector<MInst> code = {
        ins(MOp::Smull, 3, 1, 2),      // 10^10: doesn't fit in 32 bits
        ins(MOp::CmpSxtw, 0, 3, 3),
        ins(MOp::Ret),
    };
    CodeObject obj;
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_FALSE(st.flagZ);  // 64-bit value != sign-extended low half
}

TEST_F(SimTest, DivisionCornerCases)
{
    MachineState st;
    st.x[1] = 7;
    st.x[2] = 0;
    EXPECT_EQ(run({ins(MOp::SDiv, 0, 1, 2)}, st), 0u);  // div-by-0 -> 0
    st.x[1] = static_cast<u32>(INT32_MIN);
    st.x[2] = static_cast<u32>(-1);
    EXPECT_EQ(run({ins(MOp::SDiv, 0, 1, 2)}, st),
              static_cast<u64>(static_cast<u32>(INT32_MIN)));
}

TEST_F(SimTest, ShiftsAndLogic)
{
    MachineState st;
    st.x[1] = static_cast<u32>(-8);
    EXPECT_EQ(run({ins(MOp::AsrI, 0, 1, 0, 1)}, st),
              static_cast<u64>(static_cast<u32>(-4)));
    EXPECT_EQ(run({ins(MOp::LsrI, 0, 1, 0, 28)}, st), 15u);
    st.x[1] = 0b1100;
    st.x[2] = 0b1010;
    EXPECT_EQ(run({ins(MOp::And, 0, 1, 2)}, st), 0b1000u);
    EXPECT_EQ(run({ins(MOp::Eor, 0, 1, 2)}, st), 0b0110u);
}

TEST_F(SimTest, LoadsAndStores)
{
    Addr a = heap.allocate(64, 1, 0);
    MachineState st;
    st.x[1] = a;
    st.x[2] = 0xdeadbeef;
    run({ins(MOp::StrW, 2, 1, 0, 16), ins(MOp::LdrW, 0, 1, 0, 16)}, st);
    EXPECT_EQ(st.x[0], 0xdeadbeefu);

    // Register-offset addressing with scale.
    st.x[3] = 2;
    MInst ld = ins(MOp::LdrWr, 0, 1, 3, 8);
    ld.scale = 2;  // addr = a + (2 << 2) + 8 = a + 16
    run({ld}, st);
    EXPECT_EQ(st.x[0], 0xdeadbeefu);
}

TEST_F(SimTest, WildLoadsFaultSafely)
{
    MachineState st;
    st.x[1] = heap.sizeBytes() + 1024;
    EXPECT_EQ(run({ins(MOp::LdrW, 0, 1, 0, 0)}, st), 0xdeadbeefu);
}

TEST_F(SimTest, FloatingPoint)
{
    MachineState st;
    st.d[1] = 1.5;
    st.d[2] = 2.25;
    std::vector<MInst> code = {ins(MOp::FAdd, 0, 1, 2), ins(MOp::Ret)};
    CodeObject obj;
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_DOUBLE_EQ(st.d[0], 3.75);

    st.x[1] = static_cast<u32>(-7);
    code = {ins(MOp::Scvtf, 3, 1), ins(MOp::Ret)};
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_DOUBLE_EQ(st.d[3], -7.0);
}

TEST_F(SimTest, FcmpFlagsAreNanCorrect)
{
    MachineState st;
    st.d[0] = 1.0;
    st.d[1] = 2.0;
    std::vector<MInst> code = {ins(MOp::FCmp, 0, 0, 1), ins(MOp::Ret)};
    CodeObject obj;
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_TRUE(st.flagN);   // less: Mi holds

    st.d[1] = std::nan("");
    core.run(obj, st, nullptr, nullptr);
    EXPECT_TRUE(st.flagC);
    EXPECT_TRUE(st.flagV);   // unordered
    EXPECT_FALSE(st.flagN);  // Mi (JS <) false on NaN
}

TEST_F(SimTest, FjcvtzsWrapsLikeToInt32)
{
    MachineState st;
    std::vector<MInst> code = {ins(MOp::Fjcvtzs, 0, 1), ins(MOp::Ret)};
    CodeObject obj;
    obj.code = code;
    st.d[1] = 4294967297.0;  // 2^32 + 1
    core.run(obj, st, nullptr, nullptr);
    EXPECT_EQ(static_cast<u32>(st.x[0]), 1u);
    st.d[1] = -1.5;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_EQ(static_cast<i32>(st.x[0]), -1);
    st.d[1] = std::nan("");
    core.run(obj, st, nullptr, nullptr);
    EXPECT_EQ(st.x[0], 0u);
}

TEST_F(SimTest, BranchesAndConditions)
{
    MachineState st;
    st.x[1] = 5;
    // if (x1 == 5) x0 = 1; else x0 = 2;
    std::vector<MInst> code;
    code.push_back(ins(MOp::CmpI, 0, 1, 0, 5));
    MInst b = ins(MOp::Bcond);
    b.cond = Cond::Ne;
    b.target = 4;
    code.push_back(b);
    code.push_back(ins(MOp::MovI, 0, 0, 0, 1));
    code.push_back(ins(MOp::Ret));
    code.push_back(ins(MOp::MovI, 0, 0, 0, 2));
    code.push_back(ins(MOp::Ret));
    CodeObject obj;
    obj.code = code;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_EQ(st.x[0], 1u);
    st.x[1] = 6;
    core.run(obj, st, nullptr, nullptr);
    EXPECT_EQ(st.x[0], 2u);
}

TEST_F(SimTest, DeoptExitReturnsExitIndex)
{
    MachineState st;
    std::vector<MInst> code;
    MInst d = ins(MOp::DeoptExit);
    d.imm = 3;
    code.push_back(d);
    CodeObject obj;
    obj.code = code;
    RunResult r = core.run(obj, st, nullptr, nullptr);
    EXPECT_TRUE(r.deopted);
    EXPECT_EQ(r.deoptExit, 3);
}

TEST_F(SimTest, RuntimeCallDispatchesAndPoisons)
{
    MachineState st;
    st.x[5] = 77;
    std::vector<MInst> code;
    MInst call = ins(MOp::CallRt);
    call.target = static_cast<u32>(RuntimeFn::CreateObjectRt);
    code.push_back(call);
    code.push_back(ins(MOp::MovR, 1, 0));
    run(code, st);
    EXPECT_EQ(lastRt, RuntimeFn::CreateObjectRt);
    EXPECT_EQ(st.x[1], 4242u);           // result moved from x0
    EXPECT_EQ(st.x[5], 0xdeadbeefdeadbeefULL);  // caller-saved poisoned
}

TEST_F(SimTest, JsLdrSmiLoadsAndUntags)
{
    // §V: the extension load untags in the load unit.
    Addr a = heap.allocate(32, 1, 0);
    heap.writeU32(a + 8, Value::smi(-21).bits());
    MachineState st;
    st.x[1] = a;
    run({ins(MOp::JsLdurSmiI, 0, 1, 0, 8)}, st);
    EXPECT_EQ(static_cast<i32>(st.x[0]), -21);
    EXPECT_EQ(st.special[static_cast<int>(SpecialReg::REG_RE)], 0u);
}

TEST_F(SimTest, JsLdrSmiFailureRaisesCommitException)
{
    Addr a = heap.allocate(32, 1, 0);
    heap.writeU32(a + 8, Value::heap(a).bits());  // not an SMI
    MachineState st;
    st.x[1] = a;
    std::vector<MInst> code;
    MInst ld = ins(MOp::JsLdurSmiI, 0, 1, 0, 8);
    ld.deoptIndex = 5;
    code.push_back(ld);
    code.push_back(ins(MOp::Ret));
    CodeObject obj;
    obj.code = code;
    RunResult r = core.run(obj, st, nullptr, nullptr);
    EXPECT_TRUE(r.deopted);
    EXPECT_EQ(r.deoptExit, 5);
    // REG_PC recorded the failing load's pc.
    EXPECT_EQ(st.special[static_cast<int>(SpecialReg::REG_PC)], 0u);
}

TEST_F(SimTest, ScaledRegisterSmiLoad)
{
    Addr a = heap.allocate(64, 1, 0);
    heap.writeU32(a + 8 + 4 * 3, Value::smi(123).bits());
    MachineState st;
    st.x[1] = a + 8;
    st.x[2] = 3;
    run({ins(MOp::JsLdrSmiRS, 0, 1, 2)}, st);
    EXPECT_EQ(static_cast<i32>(st.x[0]), 123);
}
