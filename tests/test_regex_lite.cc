/** @file Tests for the irregexp-lite backtracking engine. */

#include <gtest/gtest.h>

#include "runtime/regex_lite.hh"

using namespace vspec;

namespace
{

bool
matches(const std::string &pat, const std::string &s)
{
    u64 steps = 0;
    return RegexLite(pat).test(s, steps);
}

u32
count(const std::string &pat, const std::string &s)
{
    u64 steps = 0;
    return RegexLite(pat).countMatches(s, steps);
}

std::string
replace(const std::string &pat, const std::string &s, const std::string &r)
{
    u64 steps = 0;
    return RegexLite(pat).replaceAll(s, r, steps);
}

} // namespace

TEST(RegexLite, Literals)
{
    EXPECT_TRUE(matches("abc", "xxabcxx"));
    EXPECT_FALSE(matches("abc", "abxc"));
    EXPECT_TRUE(matches("", "anything"));
}

TEST(RegexLite, DotAndClasses)
{
    EXPECT_TRUE(matches("a.c", "abc"));
    EXPECT_FALSE(matches("a.c", "a\nc"));
    EXPECT_TRUE(matches("[abc]x", "cx"));
    EXPECT_FALSE(matches("[abc]x", "dx"));
    EXPECT_TRUE(matches("[a-f0-9]+", "beef42"));
    EXPECT_TRUE(matches("[^aeiou]", "z"));
    EXPECT_FALSE(matches("[^z]", "z"));
}

TEST(RegexLite, Escapes)
{
    EXPECT_TRUE(matches("\\d\\d\\d", "abc123"));
    EXPECT_FALSE(matches("\\d", "abc"));
    EXPECT_TRUE(matches("\\w+", "a_1"));
    EXPECT_TRUE(matches("a\\.b", "a.b"));
    EXPECT_FALSE(matches("a\\.b", "axb"));
    EXPECT_TRUE(matches("\\s", "a b"));
}

TEST(RegexLite, Quantifiers)
{
    EXPECT_TRUE(matches("ab*c", "ac"));
    EXPECT_TRUE(matches("ab*c", "abbbc"));
    EXPECT_TRUE(matches("ab+c", "abc"));
    EXPECT_FALSE(matches("ab+c", "ac"));
    EXPECT_TRUE(matches("ab?c", "ac"));
    EXPECT_TRUE(matches("ab?c", "abc"));
    EXPECT_FALSE(matches("ab?c", "abbc"));
}

TEST(RegexLite, AlternationAndGroups)
{
    EXPECT_TRUE(matches("cat|dog", "hotdog"));
    EXPECT_FALSE(matches("cat|dog", "bird"));
    EXPECT_TRUE(matches("a(bc)+d", "abcbcd"));
    EXPECT_FALSE(matches("a(bc)+d", "ad"));
    EXPECT_TRUE(matches("(a|b)(c|d)", "bd"));
}

TEST(RegexLite, Backtracking)
{
    // Greedy star must backtrack to let the suffix match.
    EXPECT_TRUE(matches("a.*c", "abcbc"));
    EXPECT_TRUE(matches("a*a", "aaa"));
    EXPECT_TRUE(matches("(ab|a)b", "ab"));
}

TEST(RegexLite, CountMatches)
{
    EXPECT_EQ(count("ab", "ababab"), 3u);
    EXPECT_EQ(count("a+", "aaa b aa"), 2u);  // greedy, non-overlapping
    EXPECT_EQ(count("x", "abc"), 0u);
    EXPECT_EQ(count("c[at]g", "catg ccg ctg"), 1u);  // only "ctg"
}

TEST(RegexLite, ReplaceAll)
{
    EXPECT_EQ(replace("\\d+", "a1b22c333", "#"), "a#b#c#");
    EXPECT_EQ(replace("x", "abc", "!"), "abc");
    EXPECT_EQ(replace("a", "aaa", ""), "");
}

TEST(RegexLite, MatchAtReportsLength)
{
    RegexLite re("ab+");
    u64 steps = 0;
    EXPECT_EQ(re.matchAt("xabbby", 1, steps), 4);
    EXPECT_EQ(re.matchAt("xabbby", 0, steps), -1);
}

TEST(RegexLite, SyntaxErrorsThrow)
{
    EXPECT_THROW(RegexLite("a("), std::runtime_error);
    EXPECT_THROW(RegexLite("["), std::runtime_error);
    EXPECT_THROW(RegexLite("*a"), std::runtime_error);
    EXPECT_THROW(RegexLite("a\\"), std::runtime_error);
}

TEST(RegexLite, StepCountingGrowsWithWork)
{
    RegexLite re("a+b");
    std::string small(10, 'a');
    std::string large(100, 'a');
    u64 s1 = 0, s2 = 0;
    re.test(small, s1);
    re.test(large, s2);
    EXPECT_GT(s2, s1);
}

TEST(RegexLite, PaperDnaPatterns)
{
    // The patterns used by the REGEX-DNA workload must all compile.
    for (const char *p : {"agggtaaa|tttaccct", "[cgt]gggtaaa|tttaccc[acg]",
                          "aggg[acg]aaa|ttt[cgt]ccct", "gg(ta)+a",
                          "c[at]g"}) {
        u64 steps = 0;
        EXPECT_NO_THROW(RegexLite(p).test("acgtacgt", steps));
    }
}
