/** @file Tests for the vverify static verifiers: seeded-violation
 *  graphs/artifacts must produce located diagnostics (not crashes or
 *  silent passes), and the real compilation pipeline must stay
 *  verifier-clean in every experiment configuration. */

#include <gtest/gtest.h>

#include "backend/code_object.hh"
#include "harness/experiment.hh"
#include "ir/passes.hh"
#include "verify/dominators.hh"
#include "verify/verify.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

/** Minimal well-formed graph: b0 { v0=c0, v1=c1, Branch v_cmp } with
 *  b1/b2 diamond joining in b3 { phi, Return }. Tests then break one
 *  invariant at a time. */
struct Diamond
{
    Graph g;
    BlockId b0, b1, b2, b3;
    ValueId c0, c1, cmp, phi, tag, ret;

    Diamond()
    {
        b0 = g.newBlock();
        b1 = g.newBlock();
        b2 = g.newBlock();
        b3 = g.newBlock();

        IrNode n;
        n.op = IrOp::ConstI32;
        n.rep = Rep::Int32;
        c0 = g.append(b0, n);
        n.imm = 1;
        c1 = g.append(b0, n);

        IrNode cmpn;
        cmpn.op = IrOp::I32Compare;
        cmpn.rep = Rep::Bool;
        cmpn.cond = Cond::Lt;
        cmpn.inputs = {c0, c1};
        cmp = g.append(b0, cmpn);

        IrNode br;
        br.op = IrOp::Branch;
        br.rep = Rep::None;
        br.inputs = {cmp};
        g.append(b0, br);
        g.block(b0).succTrue = b1;
        g.block(b0).succFalse = b2;
        g.block(b1).preds = {b0};
        g.block(b2).preds = {b0};

        IrNode go;
        go.op = IrOp::Goto;
        go.rep = Rep::None;
        g.append(b1, go);
        g.block(b1).succTrue = b3;
        g.append(b2, go);
        g.block(b2).succTrue = b3;
        g.block(b3).preds = {b1, b2};

        IrNode p;
        p.op = IrOp::Phi;
        p.rep = Rep::Int32;
        p.inputs = {c0, c1};
        phi = g.append(b3, p);

        IrNode t;
        t.op = IrOp::TagSmi;
        t.rep = Rep::Tagged;
        t.known31 = true;
        t.inputs = {phi};
        tag = g.append(b3, t);

        IrNode r;
        r.op = IrOp::Return;
        r.rep = Rep::None;
        r.inputs = {tag};
        ret = g.append(b3, r);
    }
};

/** Minimal consistent CodeObject: one check (Cmp + deopt Bcond), its
 *  exit, and the deopt-exit region. */
CodeObject
smallCode()
{
    CodeObject co;
    co.spillSlots = 2;

    CheckInfo ci;
    ci.id = 0;
    ci.reason = DeoptReason::NotASmi;
    ci.group = CheckGroup::NotASmi;
    co.checks.push_back(ci);

    DeoptExitInfo exit;
    exit.checkId = 0;
    exit.reason = DeoptReason::NotASmi;
    DeoptLocation loc;
    loc.where = DeoptLocation::Where::Reg;
    loc.reg = 3;
    exit.regs.push_back(loc);
    exit.accumulator.where = DeoptLocation::Where::Spill;
    exit.accumulator.slot = 1;
    co.deoptExits.push_back(exit);

    MInst cmp;
    cmp.op = MOp::TstI;
    cmp.rn = 1;
    cmp.imm = 1;
    cmp.checkId = 0;
    cmp.checkRole = CheckRole::Condition;
    co.code.push_back(cmp);

    MInst br;
    br.op = MOp::Bcond;
    br.cond = Cond::Ne;
    br.isDeoptBranch = true;
    br.deoptIndex = 0;
    br.checkId = 0;
    br.checkRole = CheckRole::Branch;
    br.target = 3;
    co.code.push_back(br);

    MInst r;
    r.op = MOp::Ret;
    co.code.push_back(r);

    MInst dx;
    dx.op = MOp::DeoptExit;
    dx.imm = 0;
    dx.deoptIndex = 0;
    co.code.push_back(dx);
    return co;
}

} // namespace

// ---------------------------------------------------------------------------
// GraphVerifier: baseline + seeded violations
// ---------------------------------------------------------------------------

TEST(GraphVerifier, AcceptsWellFormedDiamond)
{
    Diamond d;
    VerifyResult r = verifyGraph(d.g, "test");
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(GraphVerifier, DetectsUseBeforeDef)
{
    // An add consumed by a second add that sits *before* it in the
    // block: a same-block use-before-def that id ordering alone
    // cannot see (constants are exempt — they float anywhere).
    Diamond d;
    IrNode add;
    add.op = IrOp::I32Add;
    add.rep = Rep::Int32;
    add.inputs = {d.c0, d.c1};
    ValueId a = d.g.append(d.b0, add);
    IrNode user;
    user.op = IrOp::I32Add;
    user.rep = Rep::Int32;
    user.inputs = {a, d.c0};
    d.g.append(d.b0, user);
    auto &nodes = d.g.block(d.b0).nodes;
    // [c0 c1 cmp br a user] -> [c0 c1 cmp user a br]: `user` now
    // reads `a` before it is defined.
    std::swap(nodes[3], nodes[5]);
    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("def-dominates-use")) << r.str();
}

TEST(GraphVerifier, DetectsCrossBlockDominanceViolation)
{
    // An add in b2 (else-arm) consuming a value defined in b1: neither
    // block dominates the other.
    Diamond d;
    IrNode stray;
    stray.op = IrOp::I32Add;
    stray.rep = Rep::Int32;
    stray.inputs = {d.c0, d.c1};
    ValueId v = d.g.append(d.b1, stray);
    d.g.block(d.b1).nodes.pop_back();  // keep terminator last
    d.g.block(d.b1).nodes.insert(d.g.block(d.b1).nodes.begin(), v);

    IrNode user;
    user.op = IrOp::I32Add;
    user.rep = Rep::Int32;
    user.inputs = {v, d.c0};
    ValueId u = d.g.append(d.b2, user);
    auto &b2n = d.g.block(d.b2).nodes;
    std::swap(b2n[0], b2n[1]);  // user before terminator
    (void)u;

    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("def-dominates-use")) << r.str();
}

TEST(GraphVerifier, DetectsRepMismatch)
{
    // TagSmi expects a machine-int input; feed it a Tagged value.
    Diamond d;
    IrNode ct;
    ct.op = IrOp::ConstTagged;
    ct.rep = Rep::Tagged;
    ValueId t = d.g.append(d.b0, ct);
    auto &b0n = d.g.block(d.b0).nodes;
    b0n.pop_back();
    b0n.insert(b0n.begin(), t);
    d.g.node(d.tag).inputs = {t};

    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("rep-input")) << r.str();
}

TEST(GraphVerifier, DetectsPhiArityMismatch)
{
    Diamond d;
    d.g.node(d.phi).inputs.push_back(d.c0);  // 3 inputs, 2 preds
    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("phi-arity")) << r.str();
}

TEST(GraphVerifier, DetectsMissingFrameStateOnDeoptNode)
{
    // A CheckBounds with no frame state cannot bail out: the runtime
    // has nothing to rebuild the interpreter frame from.
    Diamond d;
    IrNode chk;
    chk.op = IrOp::CheckBounds;
    chk.rep = Rep::Int32;
    chk.reason = DeoptReason::OutOfBounds;
    chk.inputs = {d.c0, d.c1};
    ValueId c = d.g.append(d.b1, chk);
    auto &b1n = d.g.block(d.b1).nodes;
    std::swap(b1n[0], b1n[1]);
    (void)c;

    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("deopt-frame-state")) << r.str();
}

TEST(GraphVerifier, DetectsStaleFrameStateSlot)
{
    // Frame state slot referencing a value that does not dominate the
    // deopt point (defined in the sibling arm of the diamond).
    Diamond d;
    IrNode stray;
    stray.op = IrOp::I32Add;  // non-constant: constants float anywhere
    stray.rep = Rep::Int32;
    stray.inputs = {d.c0, d.c1};
    ValueId v = d.g.append(d.b2, stray);
    auto &b2n = d.g.block(d.b2).nodes;
    std::swap(b2n[0], b2n[1]);

    FrameState fs;
    fs.bytecodeOffset = 4;
    fs.regs = {v};
    fs.accumulator = d.c0;
    u32 fsid = d.g.addFrameState(std::move(fs));

    IrNode chk;
    chk.op = IrOp::CheckBounds;
    chk.rep = Rep::Int32;
    chk.reason = DeoptReason::OutOfBounds;
    chk.frameState = fsid;
    chk.inputs = {d.c0, d.c1};
    ValueId c = d.g.append(d.b1, chk);
    auto &b1n = d.g.block(d.b1).nodes;
    std::swap(b1n[0], b1n[1]);
    (void)c;

    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("frame-state-slot")) << r.str();
}

TEST(GraphVerifier, DetectsCheckReorderedPastSideEffect)
{
    // A deopt point after a store must not resume before the store's
    // bytecode: deopting would re-execute the store.
    Diamond d;
    FrameState early;
    early.bytecodeOffset = 2;
    u32 fs_early = d.g.addFrameState(std::move(early));
    FrameState late;
    late.bytecodeOffset = 10;
    u32 fs_late = d.g.addFrameState(std::move(late));

    IrNode tagged;
    tagged.op = IrOp::ConstTagged;
    tagged.rep = Rep::Tagged;
    ValueId obj = d.g.append(d.b0, tagged);
    auto &b0n = d.g.block(d.b0).nodes;
    b0n.pop_back();
    b0n.insert(b0n.begin(), obj);

    // In b1: check@10, store (a side effect of bytecode 10), then a
    // check resuming at 2 — re-ordered past the store.
    auto prepend = [&](IrNode n) {
        ValueId v = d.g.append(d.b1, std::move(n));
        auto &b1n = d.g.block(d.b1).nodes;
        b1n.pop_back();
        b1n.insert(b1n.end() - 1, v);
        return v;
    };
    IrNode chk1;
    chk1.op = IrOp::CheckSmi;
    chk1.rep = Rep::Tagged;
    chk1.reason = DeoptReason::NotASmi;
    chk1.frameState = fs_late;
    chk1.inputs = {obj};
    prepend(chk1);

    IrNode st;
    st.op = IrOp::StoreGlobal;
    st.rep = Rep::None;
    st.inputs = {obj};
    prepend(st);

    IrNode chk2 = chk1;
    chk2.frameState = fs_early;
    prepend(chk2);

    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("check-after-effect")) << r.str();
}

TEST(GraphVerifier, DetectsUseOfDeadValue)
{
    Diamond d;
    d.g.node(d.c1).dead = true;  // cmp and phi still use it
    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("use-of-dead")) << r.str();
}

TEST(GraphVerifier, DetectsMissingTerminator)
{
    Diamond d;
    d.g.node(d.ret).dead = true;  // b3 no longer ends in a terminator
    VerifyResult r = verifyGraph(d.g, "test");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("terminator-missing")) << r.str();
}

TEST(Dominators, DiamondDominance)
{
    Diamond d;
    DominatorTree dom(d.g);
    EXPECT_TRUE(dom.dominates(d.b0, d.b3));
    EXPECT_TRUE(dom.dominates(d.b0, d.b1));
    EXPECT_FALSE(dom.dominates(d.b1, d.b3));
    EXPECT_FALSE(dom.dominates(d.b1, d.b2));
    EXPECT_EQ(dom.idom(d.b3), d.b0);
}

// ---------------------------------------------------------------------------
// BytecodeVerifier
// ---------------------------------------------------------------------------

namespace
{

FunctionInfo
smallFunction()
{
    FunctionInfo fn;
    fn.id = 0;
    fn.name = "t";
    fn.registerCount = 4;
    fn.constants.push_back(Value::smi(7));
    fn.feedback.addSlot(SlotKind::BinaryOp);
    fn.feedback.addSlot(SlotKind::BinaryOp);
    fn.bytecode.push_back({Bc::LdaConst, 0, 0, 0});
    fn.bytecode.push_back({Bc::Star, 2, 0, 0});
    fn.bytecode.push_back({Bc::Add, 2, 1, 0});
    fn.bytecode.push_back({Bc::Return, 0, 0, 0});
    return fn;
}

} // namespace

TEST(BytecodeVerifier, AcceptsWellFormedFunction)
{
    FunctionInfo fn = smallFunction();
    VerifyResult r = verifyBytecode(fn);
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(BytecodeVerifier, DetectsRegisterOutOfBounds)
{
    FunctionInfo fn = smallFunction();
    fn.bytecode[1].a = 9;  // frame has 4 registers
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("register-bounds")) << r.str();
}

TEST(BytecodeVerifier, DetectsConstantPoolOverflow)
{
    FunctionInfo fn = smallFunction();
    fn.bytecode[0].a = 3;  // pool has 1 entry
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("constant-pool-bounds")) << r.str();
}

TEST(BytecodeVerifier, DetectsFeedbackSlotOverflow)
{
    FunctionInfo fn = smallFunction();
    fn.bytecode[2].b = 5;  // vector has 2 slots
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("feedback-slot-bounds")) << r.str();
}

TEST(BytecodeVerifier, DetectsBadJumpTarget)
{
    FunctionInfo fn = smallFunction();
    fn.bytecode[1] = {Bc::Jump, 99, 0, 0};
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("jump-target")) << r.str();
}

TEST(BytecodeVerifier, DetectsFallOffEnd)
{
    FunctionInfo fn = smallFunction();
    fn.bytecode.pop_back();  // Add is now last
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("fall-off-end")) << r.str();
}

TEST(BytecodeVerifier, DetectsCallArgWindowOverflow)
{
    FunctionInfo fn = smallFunction();
    // callee r2, args r3..r5 — past the 4-register frame.
    fn.bytecode[2] = {Bc::Call, 2, 3, packCall(3, 0)};
    VerifyResult r = verifyBytecode(fn);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("register-bounds")) << r.str();
}

// ---------------------------------------------------------------------------
// CodeObjectVerifier
// ---------------------------------------------------------------------------

TEST(CodeVerifier, AcceptsWellFormedCode)
{
    CodeObject co = smallCode();
    VerifyResult r = verifyCodeObject(co);
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(CodeVerifier, DetectsDanglingCheckAnnotation)
{
    CodeObject co = smallCode();
    co.code[0].checkId = 5;  // table has 1 check
    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("check-annotation")) << r.str();
}

TEST(CodeVerifier, DetectsOrphanedDeoptExit)
{
    CodeObject co = smallCode();
    // Second exit with a marker but no referencing branch.
    DeoptExitInfo orphan;
    orphan.checkId = 0;
    orphan.reason = DeoptReason::NotASmi;
    co.deoptExits.push_back(orphan);
    MInst dx;
    dx.op = MOp::DeoptExit;
    dx.imm = 1;
    dx.deoptIndex = 1;
    co.code.push_back(dx);

    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("orphaned-deopt-exit")) << r.str();
}

TEST(CodeVerifier, OrphanedExitsExpectedUnderBranchRemoval)
{
    CodeObject co = smallCode();
    // Branch-only removal: drop the Bcond, keep condition + exit.
    co.branchesRemoved = true;
    co.code.erase(co.code.begin() + 1);
    co.code[2].deoptIndex = 0;  // markers kept
    VerifyResult r = verifyCodeObject(co);
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(CodeVerifier, DetectsSurvivingDeoptBranchUnderBranchRemoval)
{
    CodeObject co = smallCode();
    co.branchesRemoved = true;  // but the Bcond is still there
    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("branch-removal-leak")) << r.str();
}

TEST(CodeVerifier, DetectsCheckWithoutConditionInstructions)
{
    // §IV-B invariant: the check's condition computation must stay in
    // the instruction stream.
    CodeObject co = smallCode();
    co.code[0].checkId = kNoCheck;
    co.code[0].checkRole = CheckRole::None;
    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("check-condition-alive")) << r.str();
}

TEST(CodeVerifier, DetectsBadDeoptBranchTarget)
{
    CodeObject co = smallCode();
    co.code[1].target = 2;  // Ret, not the DeoptExit marker
    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("deopt-branch-target")) << r.str();
}

TEST(CodeVerifier, DetectsOutOfRangeDeoptLocation)
{
    CodeObject co = smallCode();
    co.deoptExits[0].accumulator.slot = 7;  // 2 spill slots
    VerifyResult r = verifyCodeObject(co);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("deopt-location")) << r.str();
}

// ---------------------------------------------------------------------------
// Pipeline cleanliness: every pass, every workload, every experiment
// configuration keeps all three verifiers green.
// ---------------------------------------------------------------------------

TEST(VerifyPipeline, AllConfigsStayVerifierClean)
{
    struct Config
    {
        const char *name;
        bool removeAllChecks;
        bool branchesOnly;
        bool smi;
    };
    const Config configs[] = {
        {"checks-on", false, false, false},
        {"checks-removed", true, false, false},
        {"branch-only", false, true, false},
        {"smi-fusion", false, false, true},
    };

    for (const Config &c : configs) {
        for (const Workload &w : suite()) {
            RunConfig rc;
            rc.iterations = 6;
            rc.verifyLevel = VerifyLevel::Passes;
            rc.samplerEnabled = false;
            if (c.removeAllChecks)
                rc.removeChecks.fill(true);
            rc.removeBranchesOnly = c.branchesOnly;
            rc.smiExtension = c.smi;

            RunOutcome out = runWorkload(w, rc);
            // Check removal intentionally corrupts some benchmarks
            // (the paper's 16-of-51); what must never happen is a
            // *verifier* failure — the artifacts stay well-formed
            // even when the speculation they encode is wrong.
            EXPECT_EQ(out.error.find("vverify"), std::string::npos)
                << c.name << " / " << w.name << ": " << out.error;
        }
    }
}
