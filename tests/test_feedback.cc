/** @file Unit tests for type-feedback vectors and their lattice. */

#include <gtest/gtest.h>

#include "bytecode/feedback.hh"

using namespace vspec;

TEST(Feedback, OperandJoinLattice)
{
    using F = OperandFeedback;
    EXPECT_EQ(joinOperand(F::None, F::Smi), F::Smi);
    EXPECT_EQ(joinOperand(F::Smi, F::None), F::Smi);
    EXPECT_EQ(joinOperand(F::Smi, F::Smi), F::Smi);
    EXPECT_EQ(joinOperand(F::Smi, F::Number), F::Number);
    EXPECT_EQ(joinOperand(F::Number, F::Smi), F::Number);
    EXPECT_EQ(joinOperand(F::String, F::String), F::String);
    EXPECT_EQ(joinOperand(F::Smi, F::String), F::Any);
    EXPECT_EQ(joinOperand(F::Number, F::String), F::Any);
    EXPECT_EQ(joinOperand(F::Any, F::Smi), F::Any);
}

TEST(Feedback, JoinIsMonotone)
{
    // Property: joining never narrows (a requirement for deopt ->
    // re-optimize convergence).
    using F = OperandFeedback;
    auto rank = [](F f) {
        switch (f) {
          case F::None: return 0;
          case F::Smi: return 1;
          case F::Number: case F::String: return 2;
          case F::Any: return 3;
        }
        return 3;
    };
    F all[] = {F::None, F::Smi, F::Number, F::String, F::Any};
    for (F a : all) {
        for (F b : all) {
            F j = joinOperand(a, b);
            EXPECT_GE(rank(j), rank(a)) << "join narrowed lhs";
            EXPECT_GE(rank(j), rank(b)) << "join narrowed rhs";
            EXPECT_EQ(joinOperand(a, b), joinOperand(b, a))
                << "join not commutative";
        }
    }
}

TEST(Feedback, PropertyMonoToPolyToMegamorphic)
{
    PropertyFeedback pf;
    EXPECT_EQ(pf.state, PropertyFeedback::State::None);
    pf.recordMapSlot(1, 0);
    EXPECT_TRUE(pf.isMonomorphic());
    pf.recordMapSlot(1, 0);  // same map: stays monomorphic
    EXPECT_TRUE(pf.isMonomorphic());
    pf.recordMapSlot(2, 1);
    EXPECT_EQ(pf.state, PropertyFeedback::State::Polymorphic);
    pf.recordMapSlot(3, 0);
    pf.recordMapSlot(4, 0);
    EXPECT_EQ(pf.state, PropertyFeedback::State::Polymorphic);
    pf.recordMapSlot(5, 0);  // 5th map: megamorphic
    EXPECT_EQ(pf.state, PropertyFeedback::State::Megamorphic);
    EXPECT_TRUE(pf.entries.empty());
}

TEST(Feedback, PropertyTransitionRecorded)
{
    PropertyFeedback pf;
    pf.recordMapSlot(1, 2, 9);
    ASSERT_EQ(pf.entries.size(), 1u);
    EXPECT_EQ(pf.entries[0].transition, 9u);
    EXPECT_EQ(pf.entries[0].slotIndex, 2);
}

TEST(Feedback, ElementTypedThenMegamorphic)
{
    ElementFeedback ef;
    ef.recordAccess(7, ElementKind::Smi);
    EXPECT_EQ(ef.state, ElementFeedback::State::Typed);
    EXPECT_EQ(ef.arrayMap, 7u);
    ef.recordAccess(7, ElementKind::Smi);
    EXPECT_EQ(ef.state, ElementFeedback::State::Typed);
    ef.recordAccess(8, ElementKind::Double);
    EXPECT_EQ(ef.state, ElementFeedback::State::Megamorphic);
}

TEST(Feedback, CallMonoThenMegamorphic)
{
    CallFeedback cf;
    cf.recordTarget(3);
    EXPECT_EQ(cf.state, CallFeedback::State::Monomorphic);
    EXPECT_EQ(cf.target, 3u);
    cf.recordTarget(3);
    EXPECT_EQ(cf.state, CallFeedback::State::Monomorphic);
    cf.recordTarget(4);
    EXPECT_EQ(cf.state, CallFeedback::State::Megamorphic);
}

TEST(Feedback, VectorWarmDetectionAndReset)
{
    FeedbackVector v;
    int s0 = v.addSlot(SlotKind::BinaryOp);
    int s1 = v.addSlot(SlotKind::Property);
    EXPECT_FALSE(v.hasAnyFeedback());
    v.at(s0).operands = OperandFeedback::Smi;
    EXPECT_TRUE(v.hasAnyFeedback());
    v.reset();
    EXPECT_FALSE(v.hasAnyFeedback());
    v.at(s1).property.recordMapSlot(1, 0);
    EXPECT_TRUE(v.hasAnyFeedback());
    EXPECT_EQ(v.at(s1).kind, SlotKind::Property);
}
