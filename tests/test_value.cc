/** @file Unit tests for the tagged Value representation. */

#include <gtest/gtest.h>

#include "vm/value.hh"

using namespace vspec;

TEST(Value, SmiTaggingRoundTrips)
{
    for (i32 v : {0, 1, -1, 42, -42, kSmiMax, kSmiMin, 123456, -987654}) {
        Value tagged = Value::smi(v);
        EXPECT_TRUE(tagged.isSmi());
        EXPECT_FALSE(tagged.isHeap());
        EXPECT_EQ(tagged.asSmi(), v);
    }
}

TEST(Value, SmiTagIsLsbClear)
{
    // §II-B: "The Least-significant Bit (LSB) is the tag. If this tag
    // bit is cleared, the remaining bits are a signed 31-bit integer."
    EXPECT_EQ(Value::smi(7).bits() & 1u, 0u);
    EXPECT_EQ(Value::smi(7).bits(), 14u);
    EXPECT_EQ(Value::smi(-3).bits(), static_cast<u32>(-6));
}

TEST(Value, HeapTagIsLsbSet)
{
    Value p = Value::heap(0x1000);
    EXPECT_TRUE(p.isHeap());
    EXPECT_FALSE(p.isSmi());
    EXPECT_EQ(p.bits(), 0x1001u);
    EXPECT_EQ(p.asAddr(), 0x1000u);
}

TEST(Value, SmiRangeIs31Bit)
{
    EXPECT_EQ(kSmiBits, 31);
    EXPECT_EQ(kSmiMax, (1 << 30) - 1);
    EXPECT_EQ(kSmiMin, -(1 << 30));
    EXPECT_TRUE(smiFits(kSmiMax));
    EXPECT_TRUE(smiFits(kSmiMin));
    EXPECT_FALSE(smiFits(static_cast<i64>(kSmiMax) + 1));
    EXPECT_FALSE(smiFits(static_cast<i64>(kSmiMin) - 1));
}

TEST(Value, OutOfRangeSmiPanics)
{
    EXPECT_THROW(Value::smi(kSmiMax + 1), std::runtime_error);
    EXPECT_THROW(Value::smi(kSmiMin - 1), std::runtime_error);
}

TEST(Value, MisalignedHeapAddressPanics)
{
    EXPECT_THROW(Value::heap(0x1001), std::runtime_error);
    EXPECT_THROW(Value::heap(0), std::runtime_error);
}

TEST(Value, UntaggingIsArithmeticShift)
{
    // The untagging right-shift of the paper: bits >> 1, sign-extended.
    Value v = Value::smi(-100);
    EXPECT_EQ(static_cast<i32>(v.bits()) >> 1, -100);
}

TEST(Value, EqualityIsBitEquality)
{
    EXPECT_EQ(Value::smi(5), Value::smi(5));
    EXPECT_NE(Value::smi(5), Value::smi(6));
    EXPECT_NE(Value::smi(5), Value::heap(8));
}

TEST(Value, BitsRoundTrip)
{
    Value v = Value::fromBits(Value::smi(1234).bits());
    EXPECT_TRUE(v.isSmi());
    EXPECT_EQ(v.asSmi(), 1234);
}

class SmiSweep : public ::testing::TestWithParam<i32>
{
};

TEST_P(SmiSweep, TagUntagIdentity)
{
    i32 v = GetParam();
    EXPECT_EQ(Value::smi(v).asSmi(), v);
    // Tagging then untagging through raw bit ops matches the class.
    u32 tagged = static_cast<u32>(v) << 1;
    EXPECT_EQ(static_cast<i32>(tagged) >> 1, v);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SmiSweep,
                         ::testing::Values(0, 1, -1, 2, -2, 255, -255,
                                           65535, -65536, kSmiMax,
                                           kSmiMax - 1, kSmiMin,
                                           kSmiMin + 1));
