/** @file Tests for the IR optimization / instrumentation passes. */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/passes.hh"
#include "runtime/engine.hh"

using namespace vspec;

namespace
{

struct Built
{
    std::unique_ptr<Engine> engine;
    std::optional<Graph> graph;
};

Built
buildFor(const std::string &src)
{
    Built b;
    EngineConfig cfg;
    cfg.enableOptimization = false;
    b.engine = std::make_unique<Engine>(cfg);
    b.engine->loadProgram(src);
    for (int i = 0; i < 3; i++)
        b.engine->call("bench");
    CompilerEnv env{b.engine->vm, b.engine->globals, b.engine->functions};
    FunctionInfo &fn =
        b.engine->functions.at(b.engine->functions.idOf("bench"));
    b.graph = buildGraph(env, fn);
    return b;
}

u32
liveCount(const Graph &g, IrOp op)
{
    u32 n = 0;
    for (const auto &node : g.nodes)
        if (!node.dead && node.op == op)
            n++;
    return n;
}

const char *kArraySum = R"JS(
var a = [];
function setup() { for (var i = 0; i < 16; i++) { a.push(i % 7); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 16; i++) { s = (s + a[i]) % 1024; }
    return s;
}
)JS";

} // namespace

TEST(Passes, ShortCircuitRemovesSelectedGroups)
{
    auto b = buildFor(kArraySum);
    ASSERT_TRUE(b.graph.has_value());
    u32 bounds_before = liveCount(*b.graph, IrOp::CheckBounds);
    ASSERT_GE(bounds_before, 1u);

    PassConfig cfg;
    cfg.removeGroup[static_cast<size_t>(CheckGroup::Boundary)] = true;
    PassStats stats = runPasses(*b.graph, cfg);
    EXPECT_GE(stats.checksShortCircuited, bounds_before);
    EXPECT_EQ(liveCount(*b.graph, IrOp::CheckBounds), 0u);
    // Other groups survive.
    EXPECT_GE(liveCount(*b.graph, IrOp::CheckMap), 1u);
}

TEST(Passes, RemovalKillsAncestorsViaDce)
{
    // Fig. 5's point: removing the bounds check also removes the array
    // length load that only the check used.
    auto b1 = buildFor(kArraySum);
    PassConfig keep;
    runPasses(*b1.graph, keep);
    u32 raw_loads_with = liveCount(*b1.graph, IrOp::LoadFieldRaw);

    auto b2 = buildFor(kArraySum);
    PassConfig rm;
    rm.removeGroup[static_cast<size_t>(CheckGroup::Boundary)] = true;
    runPasses(*b2.graph, rm);
    u32 raw_loads_without = liveCount(*b2.graph, IrOp::LoadFieldRaw);

    EXPECT_LT(raw_loads_without, raw_loads_with);
}

TEST(Passes, RemoveAllLeavesNoChecks)
{
    auto b = buildFor(kArraySum);
    runPasses(*b.graph, PassConfig::removeAllChecks());
    EXPECT_EQ(liveCount(*b.graph, IrOp::CheckBounds), 0u);
    EXPECT_EQ(liveCount(*b.graph, IrOp::CheckMap), 0u);
    EXPECT_EQ(liveCount(*b.graph, IrOp::CheckSmi), 0u);
    EXPECT_EQ(liveCount(*b.graph, IrOp::CheckHeapObject), 0u);
    for (const auto &n : b.graph->nodes) {
        if (!n.dead)
            EXPECT_FALSE(n.checked && n.op != IrOp::Deopt)
                << irOpName(n.op) << " still checked";
    }
}

TEST(Passes, HoistingMovesInvariantChecksOutOfLoops)
{
    auto b = buildFor(kArraySum);
    PassStats stats = runPasses(*b.graph, PassConfig::none());
    EXPECT_GE(stats.checksHoisted, 1u);
}

TEST(Passes, ConstantChecksFolded)
{
    // The global array is embedded as a constant; its tag check is
    // statically true and must be folded away.
    auto b = buildFor(kArraySum);
    PassStats stats = runPasses(*b.graph, PassConfig::none());
    EXPECT_GE(stats.checksFolded, 1u);
    for (const auto &n : b.graph->nodes) {
        if (n.dead || n.op != IrOp::CheckHeapObject)
            continue;
        EXPECT_NE(b.graph->node(n.inputs[0]).op, IrOp::ConstTagged);
    }
}

TEST(Passes, MinusZeroElidedWhenTruncated)
{
    // The product feeds a modulo, which truncates: -0 unobservable.
    auto b = buildFor(R"JS(
var a = [];
function setup() { for (var i = 0; i < 8; i++) { a.push(i + 1); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 8; i++) { s = (s + a[i] * 3) % 256; }
    return s;
}
)JS");
    PassStats stats = runPasses(*b.graph, PassConfig::none());
    EXPECT_GE(stats.minusZeroElided, 1u);
}

TEST(Passes, MinusZeroKeptWhenObservable)
{
    // The product is returned (tagged): -0 is observable.
    auto b = buildFor(R"JS(
function bench(x) { return x * 1; }
)JS");
    // Warm with a call that passes an SMI.
    // (buildFor's bench() call passes no args; feedback may be thin --
    // accept either checked multiply with -0 retained or soft deopt.)
    PassStats stats = runPasses(*b.graph, PassConfig::none());
    for (ValueId id = 0; id < b.graph->nodes.size(); id++) {
        const IrNode &n = b.graph->nodes[id];
        if (!n.dead && n.op == IrOp::I32Mul && n.checked)
            EXPECT_FALSE(n.elideMinusZero);
    }
    (void)stats;
}

TEST(Passes, SmiLoadFusionCreatesFusedLoads)
{
    auto b = buildFor(kArraySum);
    PassConfig cfg;
    cfg.smiLoadFusion = true;
    PassStats stats = runPasses(*b.graph, cfg);
    EXPECT_GE(stats.smiLoadsFused, 1u);
    EXPECT_GE(liveCount(*b.graph, IrOp::LoadElemSmiUntag), 1u);
    // The fused chain's CheckSmi and UntagSmi are gone.
    for (const auto &n : b.graph->nodes) {
        if (n.dead || n.op != IrOp::CheckSmi)
            continue;
        EXPECT_NE(b.graph->node(n.inputs[0]).op, IrOp::LoadElem32);
    }
}

TEST(Passes, DedupeConstantsReducesNodes)
{
    auto b = buildFor(kArraySum);
    u32 before = liveCount(*b.graph, IrOp::ConstTagged);
    dedupeConstants(*b.graph);
    u32 after = liveCount(*b.graph, IrOp::ConstTagged);
    EXPECT_LT(after, before);
}

TEST(Passes, PassStatsAreConsistent)
{
    auto b = buildFor(kArraySum);
    PassStats stats = runPasses(*b.graph, PassConfig::none());
    EXPECT_EQ(stats.checksShortCircuited, 0u);
    EXPECT_GT(stats.nodesKilledByDce + stats.phisSimplified
              + stats.checksDeduped + stats.checksFolded, 0u);
}
