/** @file Fuzz differential oracle: seeded random MiniJS programs run
 *  under the interpreter and the speculating JIT must agree. The
 *  generator's shapes target the engine's speculation surface (SMI
 *  overflow, map rotation, out-of-bounds loads), in the spirit of the
 *  correctness-of-speculation testing literature. A failing seed is a
 *  standalone repro: print the seed, regenerate, debug. */

#include <gtest/gtest.h>

#include <memory>

#include "runtime/engine.hh"
#include "support/fuzz_gen.hh"

using namespace vspec;

namespace
{

struct FuzzResult
{
    std::string checksum;
    u64 deopts = 0;
    u64 compiles = 0;
};

FuzzResult
runProgram(const std::string &source, bool optimize, u32 iterations,
           bool static_elim = false, bool disable_faults = false)
{
    EngineConfig cfg;
    cfg.enableOptimization = optimize;
    cfg.samplerEnabled = false;
    cfg.passes.staticElim = static_elim;
    if (disable_faults)
        cfg.faults = FaultConfig{};
    // Generated programs are tiny; a small heap keeps GC in play.
    cfg.heapSize = 8u << 20;
    Engine engine(cfg);
    engine.loadProgram(source);
    for (u32 i = 0; i < iterations; i++)
        engine.call("bench");
    FuzzResult r;
    r.checksum = engine.vm.display(engine.call("verify"));
    r.deopts = engine.deoptLog.size();
    r.compiles = engine.compilations;
    return r;
}

} // namespace

TEST(FuzzGen, DeterministicPerSeed)
{
    EXPECT_EQ(generateFuzzProgram(1234), generateFuzzProgram(1234));
    EXPECT_NE(generateFuzzProgram(1), generateFuzzProgram(2));
    // The protocol functions are always present.
    std::string p = generateFuzzProgram(7);
    EXPECT_NE(p.find("function bench()"), std::string::npos);
    EXPECT_NE(p.find("function verify()"), std::string::npos);
}

TEST(FuzzGen, InterpreterRunIsSelfConsistent)
{
    // The same program run twice in fresh engines reproduces its
    // checksum exactly — the oracle's baseline is meaningful.
    std::string p = generateFuzzProgram(42);
    FuzzResult a = runProgram(p, false, 6);
    FuzzResult b = runProgram(p, false, 6);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(FuzzDifferential, InterpAndJitAgreeOver500Programs)
{
    constexpr u64 kPrograms = 500;
    constexpr u32 kIterations = 6;  // past tier-up, deopt, reopt

    u64 total_deopts = 0;
    u64 total_compiles = 0;
    for (u64 seed = 1; seed <= kPrograms; seed++) {
        std::string source = generateFuzzProgram(seed);
        FuzzResult interp;
        FuzzResult jit;
        ASSERT_NO_THROW({
            interp = runProgram(source, false, kIterations);
        }) << "seed " << seed << "\n" << source;
        ASSERT_NO_THROW({
            jit = runProgram(source, true, kIterations);
        }) << "seed " << seed << "\n" << source;
        ASSERT_EQ(jit.checksum, interp.checksum)
            << "seed " << seed << "\n" << source;
        total_deopts += jit.deopts;
        total_compiles += jit.compiles;
    }
    // The corpus must actually exercise speculation, not tiptoe around
    // it: across 500 programs the JIT tier has to have compiled and
    // deoptimized many times.
    EXPECT_GT(total_compiles, 500u);
    EXPECT_GT(total_deopts, 100u);
}

TEST(FuzzDifferential, DeoptCostTrackingIsBitIdenticalOver200Programs)
{
    // vdcost oracle, fuzz leg: on arbitrary generated programs the
    // episode tracker must be cycle-neutral (bit-identical cycles,
    // deopts, compiles, checksum with tracking on vs off) and its
    // accounting must reconcile — episodes 1:1 with the deopt log and
    // phase cycles summing exactly to the attribution counter.
    constexpr u64 kPrograms = 200;
    constexpr u32 kIterations = 6;

    struct Obs
    {
        std::string checksum;
        u64 cycles = 0, interp = 0, deopts = 0, compiles = 0;
    };
    auto run = [](const std::string &source, bool track, Engine **out) {
        EngineConfig cfg;
        cfg.samplerEnabled = false;
        cfg.deoptCost = track;
        cfg.heapSize = 8u << 20;
        auto engine = std::make_unique<Engine>(cfg);
        engine->loadProgram(source);
        for (u32 i = 0; i < kIterations; i++)
            engine->call("bench");
        Obs o;
        o.checksum = engine->vm.display(engine->call("verify"));
        o.cycles = engine->totalCycles();
        o.interp = engine->interpreterCycles;
        o.deopts = engine->deoptLog.size();
        o.compiles = engine->compilations;
        if (out != nullptr)
            *out = engine.release();
        return o;
    };

    u64 total_episodes = 0;
    for (u64 seed = 1; seed <= kPrograms; seed++) {
        std::string source = generateFuzzProgram(seed);
        Obs off;
        Obs on;
        Engine *tracked = nullptr;
        ASSERT_NO_THROW({ off = run(source, false, nullptr); })
            << "seed " << seed << "\n" << source;
        ASSERT_NO_THROW({ on = run(source, true, &tracked); })
            << "seed " << seed << "\n" << source;
        std::unique_ptr<Engine> owner(tracked);

        ASSERT_EQ(on.checksum, off.checksum) << "seed " << seed;
        ASSERT_EQ(on.cycles, off.cycles) << "seed " << seed;
        ASSERT_EQ(on.interp, off.interp) << "seed " << seed;
        ASSERT_EQ(on.deopts, off.deopts) << "seed " << seed;
        ASSERT_EQ(on.compiles, off.compiles) << "seed " << seed;

        tracked->episodes.finish(tracked->interpreterCycles,
                                 tracked->totalCycles());
        const auto &eps = tracked->episodes.episodes();
        ASSERT_EQ(eps.size(), tracked->deoptLog.size())
            << "seed " << seed;
        i64 sum = 0;
        for (const DeoptEpisode &ep : eps) {
            ASSERT_TRUE(ep.closed) << "seed " << seed;
            sum += ep.phases.total();
        }
        ASSERT_EQ(sum, tracked->episodes.attributedCycles())
            << "seed " << seed;
        total_episodes += eps.size();
    }
    // The corpus must actually exercise the episode machinery.
    EXPECT_GT(total_episodes, 50u);
}

TEST(FuzzDifferential, StaticElimIsBitIdenticalOver300Programs)
{
    // vproof soundness oracle: deleting only *proven* checks must leave
    // the result AND the deopt/compile path untouched on arbitrary
    // generated programs — a stronger claim than checksum agreement
    // (an elided check could never legitimately change which deopts
    // fire, since a proven check can never fail). Spurious-deopt fault
    // sites are disabled on both sides: injected deopts at elided
    // check sites are the one legitimate divergence.
    constexpr u64 kPrograms = 300;
    constexpr u32 kIterations = 6;

    for (u64 seed = 1; seed <= kPrograms; seed++) {
        std::string source = generateFuzzProgram(seed);
        FuzzResult jit;
        FuzzResult sound;
        ASSERT_NO_THROW({
            jit = runProgram(source, true, kIterations,
                             /*static_elim=*/false,
                             /*disable_faults=*/true);
        }) << "seed " << seed << "\n" << source;
        ASSERT_NO_THROW({
            sound = runProgram(source, true, kIterations,
                               /*static_elim=*/true,
                               /*disable_faults=*/true);
        }) << "seed " << seed << "\n" << source;
        ASSERT_EQ(sound.checksum, jit.checksum)
            << "seed " << seed << "\n" << source;
        ASSERT_EQ(sound.deopts, jit.deopts)
            << "seed " << seed << "\n" << source;
        ASSERT_EQ(sound.compiles, jit.compiles)
            << "seed " << seed << "\n" << source;
    }
}
