/** @file Unit tests for the MiniJS parser (AST shapes, precedence). */

#include <gtest/gtest.h>

#include "frontend/parser.hh"

using namespace vspec;

TEST(Parser, PrecedenceMulOverAdd)
{
    auto e = parseExpression("1 + 2 * 3");
    EXPECT_EQ(e->dump(), "(binary + (num 1) (binary * (num 2) (num 3)))");
}

TEST(Parser, PrecedenceComparisonOverLogical)
{
    auto e = parseExpression("a < b && c > d");
    EXPECT_EQ(e->dump(),
              "(logical && (binary < (ident a) (ident b)) "
              "(binary > (ident c) (ident d)))");
}

TEST(Parser, ShiftAndBitwise)
{
    auto e = parseExpression("a | b ^ c & d << 2");
    EXPECT_EQ(e->dump(),
              "(binary | (ident a) (binary ^ (ident b) "
              "(binary & (ident c) (binary << (ident d) (num 2)))))");
}

TEST(Parser, AssignmentIsRightAssociative)
{
    auto e = parseExpression("a = b = 1");
    EXPECT_EQ(e->dump(),
              "(assign = (ident a) (assign = (ident b) (num 1)))");
}

TEST(Parser, CompoundAssignment)
{
    auto e = parseExpression("a += b * 2");
    EXPECT_EQ(e->dump(),
              "(assign += (ident a) (binary * (ident b) (num 2)))");
}

TEST(Parser, MemberIndexCallChains)
{
    auto e = parseExpression("obj.field[i](x, y)");
    EXPECT_EQ(e->dump(),
              "(call (index (member field (ident obj)) (ident i)) "
              "(ident x) (ident y))");
}

TEST(Parser, TernaryExpression)
{
    auto e = parseExpression("a ? b : c");
    EXPECT_EQ(e->dump(), "(ternary (ident a) (ident b) (ident c))");
}

TEST(Parser, UpdatePrefixVsPostfix)
{
    EXPECT_EQ(parseExpression("++i")->dump(), "(update ++ true (ident i))");
    EXPECT_EQ(parseExpression("i++")->dump(), "(update ++ false (ident i))");
}

TEST(Parser, ArrayAndObjectLiterals)
{
    auto e = parseExpression("[1, x, \"s\"]");
    EXPECT_EQ(e->dump(), "(array (num 1) (ident x) (str s))");
    auto o = parseExpression("{a: 1, b: f}");
    EXPECT_EQ(o->dump(), "(object (str a) (num 1) (str b) (ident f))");
}

TEST(Parser, FunctionDeclarations)
{
    auto prog = parseProgram("function f(a, b) { return a + b; }");
    ASSERT_EQ(prog.functions.size(), 1u);
    EXPECT_EQ(prog.functions[0].name, "f");
    ASSERT_EQ(prog.functions[0].params.size(), 2u);
    EXPECT_EQ(prog.functions[0].params[1], "b");
}

TEST(Parser, ForLoopStructure)
{
    auto prog = parseProgram("for (var i = 0; i < 10; i++) { x = i; }");
    ASSERT_EQ(prog.topLevel.size(), 1u);
    const Node *f = prog.topLevel[0].get();
    ASSERT_EQ(f->kind, NodeKind::For);
    ASSERT_EQ(f->arity(), 4u);
    EXPECT_NE(f->child(0), nullptr);  // init
    EXPECT_NE(f->child(1), nullptr);  // cond
    EXPECT_NE(f->child(2), nullptr);  // update
}

TEST(Parser, ForLoopWithEmptySections)
{
    auto prog = parseProgram("for (;;) { break; }");
    const Node *f = prog.topLevel[0].get();
    EXPECT_EQ(f->child(0), nullptr);
    EXPECT_EQ(f->child(1), nullptr);
    EXPECT_EQ(f->child(2), nullptr);
}

TEST(Parser, IfElseChain)
{
    auto prog = parseProgram("if (a) { x = 1; } else if (b) { x = 2; } "
                             "else { x = 3; }");
    const Node *n = prog.topLevel[0].get();
    ASSERT_EQ(n->kind, NodeKind::If);
    ASSERT_EQ(n->arity(), 3u);
    EXPECT_EQ(n->child(2)->kind, NodeKind::If);  // else-if nests
}

TEST(Parser, MultiDeclaratorVar)
{
    auto prog = parseProgram("var a = 1, b, c = 2;");
    const Node *blk = prog.topLevel[0].get();
    ASSERT_EQ(blk->kind, NodeKind::Block);
    EXPECT_EQ(blk->arity(), 3u);
}

TEST(Parser, ErrorsThrow)
{
    EXPECT_THROW(parseProgram("function f( { }"), ParseError);
    EXPECT_THROW(parseProgram("var ;"), ParseError);
    EXPECT_THROW(parseProgram("a +;"), ParseError);
    EXPECT_THROW(parseProgram("1 = 2;"), ParseError);
    EXPECT_THROW(parseExpression("a b"), ParseError);
}

TEST(Parser, KeywordAsPropertyNameAllowed)
{
    auto e = parseExpression("o.length");
    EXPECT_EQ(e->dump(), "(member length (ident o))");
}
