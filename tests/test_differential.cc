/** @file Differential validation across the paper's experiment configs:
 *  every workload must produce the same result under the interpreter,
 *  the JIT, the §III-B safe check-removal set, branch-only removal
 *  (§IV-B, where semantics-preserving) and the §V SMI extension; and
 *  the vtrace deopt stream must agree with the engine's deopt log. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "support/json.hh"

using namespace vspec;

namespace
{

constexpr u32 kIters = 6;

u32
testSize(const Workload &w)
{
    return std::max(4u, w.defaultSize / 8);
}

RunConfig
baseConfig(const Workload &w)
{
    RunConfig rc;
    rc.iterations = kIters;
    rc.size = testSize(w);
    rc.samplerEnabled = false;
    return rc;
}

std::vector<const Workload *>
allWorkloads()
{
    std::vector<const Workload *> out;
    for (const auto &w : suite())
        out.push_back(&w);
    return out;
}

std::string
paramName(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string n = info.param->name;
    for (char &c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

} // namespace

class ConfigDifferential : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(ConfigDifferential, ExperimentConfigsAgreeWithInterpreter)
{
    const Workload &w = *GetParam();
    RunConfig base = baseConfig(w);

    RunConfig io = base;
    io.enableOptimization = false;
    RunOutcome interp = runWorkload(w, io, nullptr);
    ASSERT_TRUE(interp.completed) << interp.error;

    // (1) baseline JIT
    RunOutcome jit = runWorkload(w, base, nullptr);
    ASSERT_TRUE(jit.completed) << jit.error;
    EXPECT_EQ(jit.checksum, interp.checksum) << "baseline JIT";

    // (2) check removal — the §III-B.2 safe set (removing a check a
    // workload needs corrupts it by design; the paper's experiment and
    // this oracle both use the safe set).
    RunConfig cr = base;
    cr.removeChecks = findSafeRemovalSet(w, base, kIters);
    RunOutcome removed = runWorkload(w, cr, nullptr);
    ASSERT_TRUE(removed.completed) << removed.error;
    EXPECT_EQ(removed.checksum, interp.checksum) << "check removal";

    // (3) branch-only removal keeps semantics only while no deopt
    // would have fired (fig10 excludes deopting benchmarks the same
    // way); it must never crash either way.
    RunConfig nb = base;
    nb.removeBranchesOnly = true;
    RunOutcome branchless = runWorkload(w, nb, nullptr);
    ASSERT_TRUE(branchless.completed) << branchless.error;
    if (jit.totalDeopts == 0)
        EXPECT_EQ(branchless.checksum, interp.checksum)
            << "branch-only removal";

    // (4) SMI load extension — a pure codegen change, always
    // semantics-preserving.
    RunConfig smi = base;
    smi.smiExtension = true;
    RunOutcome fused = runWorkload(w, smi, nullptr);
    ASSERT_TRUE(fused.completed) << fused.error;
    EXPECT_EQ(fused.checksum, interp.checksum) << "SMI extension";

    // (5) vproof static-elim — only checks *proved* redundant are
    // deleted, so unlike (2) this leg is bit-identical by construction
    // on every workload, no safe-set probing needed. Fault injection
    // off: a spurious deopt would fire an elided check's bailout path.
    RunConfig se = base;
    se.staticElim = true;
    se.faults = FaultConfig{};
    RunOutcome sound = runWorkload(w, se, nullptr);
    ASSERT_TRUE(sound.completed) << sound.error;
    EXPECT_EQ(sound.checksum, interp.checksum) << "static-elim";
    EXPECT_EQ(sound.totalDeopts, jit.totalDeopts) << "static-elim";
}

TEST_P(ConfigDifferential, InjectedFaultsPreserveResults)
{
    // vguard degradation invariant: GC stress, a failed compile (with
    // interpreter fallback + later retry) and a spurious deopt must
    // all be invisible in the final checksum.
    const Workload &w = *GetParam();
    RunConfig base = baseConfig(w);
    base.faults = FaultConfig{};
    RunOutcome clean = runWorkload(w, base, nullptr);
    ASSERT_TRUE(clean.completed) << clean.error;

    for (const char *spec :
         {"gc-every=32", "compile-fail-at=1", "spurious-deopt-at=2"}) {
        RunConfig rc = base;
        rc.faults = FaultConfig::parse(spec);
        RunOutcome out = runWorkload(w, rc, &clean.checksum);
        ASSERT_TRUE(out.completed)
            << w.name << " under " << spec << ": " << out.error;
        EXPECT_TRUE(out.valid)
            << w.name << " under " << spec << ": checksum "
            << out.checksum << " != " << clean.checksum;
    }
}

TEST_P(ConfigDifferential, DeoptCostTrackingIsCycleNeutralEverywhere)
{
    // vdcost oracle: episode tracking is host-side observability, so
    // switching it on must be invisible in every simulated result —
    // cycles, deopts, compiles, checksum — in each experiment mode,
    // and its episode accounting must reconcile exactly with the
    // engine's deopt log (episodes 1:1, phase cycles summing to the
    // independently accumulated attribution counter).
    const Workload &w = *GetParam();
    RunConfig base = baseConfig(w);

    RunConfig interp = base;
    interp.enableOptimization = false;
    RunConfig removal = base;
    removal.removeChecks = findSafeRemovalSet(w, base, kIters);
    RunConfig branches = base;
    branches.removeBranchesOnly = true;
    RunConfig smi = base;
    smi.smiExtension = true;

    const struct
    {
        const char *name;
        RunConfig rc;
    } modes[] = {{"interp", interp},
                 {"jit", base},
                 {"check-removal", removal},
                 {"branch-only", branches},
                 {"smi-extension", smi}};

    for (const auto &mode : modes) {
        RunConfig off = mode.rc;
        RunConfig on = mode.rc;
        on.deoptCost = true;
        RunOutcome a = runWorkload(w, off, nullptr);
        RunOutcome b = runWorkload(w, on, nullptr);
        ASSERT_TRUE(a.completed) << mode.name << ": " << a.error;
        ASSERT_TRUE(b.completed) << mode.name << ": " << b.error;

        EXPECT_EQ(b.totalCycles, a.totalCycles) << mode.name;
        EXPECT_EQ(b.interpreterCycles, a.interpreterCycles) << mode.name;
        EXPECT_EQ(b.checksum, a.checksum) << mode.name;
        EXPECT_EQ(b.totalDeopts, a.totalDeopts) << mode.name;
        EXPECT_EQ(b.compilations, a.compilations) << mode.name;

        const DeoptCostSummary &s = b.deoptCost;
        EXPECT_TRUE(s.enabled) << mode.name;
        EXPECT_EQ(s.episodes, b.totalDeopts) << mode.name;
        EXPECT_EQ(static_cast<i64>(s.bailoutCycles + s.replayCycles
                                   + s.recompileCycles)
                      + s.residualCycles,
                  s.attributedCycles)
            << mode.name;
        u64 group_eps = 0;
        for (u64 n : s.episodesPerGroup)
            group_eps += n;
        EXPECT_EQ(group_eps, s.episodes) << mode.name;
        EXPECT_LE(s.closedByReentry, s.episodes) << mode.name;
        if (!off.enableOptimization)
            EXPECT_EQ(s.episodes, 0u) << "interpreter tier cannot deopt";
    }
}

TEST_P(ConfigDifferential, TraceDeoptStreamMatchesEngineLog)
{
    const Workload &w = *GetParam();

    EngineConfig cfg;
    cfg.samplerEnabled = false;
    cfg.trace.categories = traceCategoryBit(TraceCategory::Deopt)
                           | traceCategoryBit(TraceCategory::Tiering);
    Engine engine(cfg);
    engine.loadProgram(instantiate(w, testSize(w)));
    for (u32 i = 0; i < kIters; i++)
        engine.call("bench");

    // Every deopt the engine logs must appear exactly once in the
    // trace stream and in the counter registry, reason by reason.
    EXPECT_EQ(engine.trace.eventCount(TraceCategory::Deopt),
              engine.deoptLog.size());
    EXPECT_EQ(engine.trace.counters.totalDeopts(),
              engine.deoptLog.size());
    u64 by_reason[kNumDeoptReasons] = {};
    for (const auto &d : engine.deoptLog)
        by_reason[static_cast<u32>(d.reason)]++;
    for (u32 r = 0; r < kNumDeoptReasons; r++)
        EXPECT_EQ(engine.trace.counters.byReason[r], by_reason[r])
            << deoptReasonName(static_cast<DeoptReason>(r));

    // Engine-level aggregates agree with the counters too. Lazy deopts
    // log twice in the engine's taxonomy (invalidation, then the
    // discard at re-entry as SharedCodeDeoptimized); Engine::lazyDeopts
    // only counts the former.
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptsEager),
              engine.eagerDeopts);
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptsSoft),
              engine.softDeopts);
    u64 shared =
        by_reason[static_cast<u32>(DeoptReason::SharedCodeDeoptimized)];
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptsLazy),
              engine.lazyDeopts + shared);

    // Both backends must stay valid JSON whatever the workload did.
    std::string err;
    EXPECT_TRUE(jsonIsValid(engine.trace.chromeTraceJson(), &err)) << err;
    EXPECT_TRUE(jsonIsValid(engine.trace.metricsJson(), &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Suite, ConfigDifferential,
                         ::testing::ValuesIn(allWorkloads()), paramName);
