/** @file Deoptimization behaviour: eager, soft, lazy; frame rebuild. */

#include <gtest/gtest.h>

#include "runtime/engine.hh"

using namespace vspec;

TEST(Deopt, OverflowDeoptsOnceAndConverges)
{
    Engine engine{EngineConfig{}};
    // Crosses the SMI boundary (~1.07e9) around the 4th call, i.e.
    // *after* tier-up at the 2nd call, so the optimized SMI add's
    // overflow check fires mid-loop.
    engine.loadProgram(R"JS(
var total = 0;
function bench() {
    for (var i = 0; i < 1000; i++) { total = total + 300000; }
    return total;
}
)JS");
    for (int i = 0; i < 10; i++)
        engine.call("bench");
    EXPECT_GE(engine.eagerDeopts, 1u);
    EXPECT_LE(engine.eagerDeopts, 3u);  // converges, no thrash
    bool saw_overflow = false;
    for (const auto &d : engine.deoptLog)
        if (d.reason == DeoptReason::Overflow)
            saw_overflow = true;
    EXPECT_TRUE(saw_overflow);
    // Result must be exact despite the mid-loop deopt (frame rebuild).
    double expected = 300000.0 * 1000 * 11;
    EXPECT_EQ(engine.vm.display(engine.call("bench")),
              formatNumber(expected));
}

TEST(Deopt, WrongMapDeoptOnNewShape)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
var items = [];
function makeA(v) { return { kind: 1, value: v }; }
function makeB(v) { return { tag: 0, kind: 2, value: v }; }
function setup() { for (var i = 0; i < 16; i++) { items.push(makeA(i)); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 16; i++) { s = s + items[i].value; }
    return s;
}
function poison() { items[3] = makeB(100); }
)JS");
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    u64 before = engine.eagerDeopts;
    engine.call("poison");
    std::string result = engine.vm.display(engine.call("bench"));
    EXPECT_GE(engine.eagerDeopts, before + 1);
    bool saw_wrong_map = false;
    for (const auto &d : engine.deoptLog)
        if (d.reason == DeoptReason::WrongMap)
            saw_wrong_map = true;
    EXPECT_TRUE(saw_wrong_map);
    // 0+1+2+100+4+...+15 = 120 - 3 + 100 = 217
    EXPECT_EQ(result, "217");
}

TEST(Deopt, SoftDeoptOnColdPathThenRecovers)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
var mode = 0;
var obj = { a: 7 };
function bench() {
    var s = 0;
    for (var i = 0; i < 50; i++) { s = (s + i) % 1000; }
    if (mode == 1) { s = s + obj.a; }
    return s;
}
function enable() { mode = 1; }
)JS");
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    engine.call("enable");
    std::string r = engine.vm.display(engine.call("bench"));
    EXPECT_GE(engine.softDeopts + engine.lazyDeopts, 1u);
    // 0..49 sum = 1225 % 1000 accumulated... verify against interp.
    EngineConfig plain;
    plain.enableOptimization = false;
    Engine ref(plain);
    ref.loadProgram(R"JS(
var mode = 0;
var obj = { a: 7 };
function bench() {
    var s = 0;
    for (var i = 0; i < 50; i++) { s = (s + i) % 1000; }
    if (mode == 1) { s = s + obj.a; }
    return s;
}
function enable() { mode = 1; }
)JS");
    for (int i = 0; i < 3; i++)
        ref.call("bench");
    ref.call("enable");
    EXPECT_EQ(r, ref.vm.display(ref.call("bench")));
}

TEST(Deopt, BoundsDeoptRebuildsExactFrame)
{
    // The OOB access happens mid-loop with live state in registers;
    // the deopt must hand the interpreter the exact frame.
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
var a = [];
var limit = 10;
function setup() { for (var i = 0; i < 10; i++) { a.push(i + 1); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < limit; i++) {
        var v = a[i];
        s = s + (v == undefined ? 1000 : v);
    }
    return s;
}
function extend() { limit = 12; }
)JS");
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(engine.vm.display(engine.call("bench")), "55");
    engine.call("extend");
    // Two OOB loads -> 55 + 2000. `limit` was embedded as a constant
    // cell, so extending it lazily invalidates the code; the OOB loads
    // are then observed by the interpreter (feedback) or by an eager
    // bounds deopt, depending on timing — either is a deopt event.
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "2055");
    EXPECT_GE(engine.eagerDeopts + engine.lazyDeopts, 1u);
}

TEST(Deopt, RepeatedDeoptsDisableOptimization)
{
    EngineConfig cfg;
    cfg.tiering.maxDeoptsBeforeDisable = 3;
    Engine engine(cfg);
    // Alternating shapes defeat monomorphic speculation until the site
    // goes polymorphic; if it kept deopting, tiering must give up.
    engine.loadProgram(R"JS(
var items = [];
function makeA(v) { return { a: v }; }
function makeB(v) { return { b: 0, a: v }; }
function makeC(v) { return { c: 0, d: 0, a: v }; }
function makeD(v) { return { e: 0, f: 0, g: 0, a: v }; }
function makeE(v) { return { h: 0, i2: 0, j: 0, k: 0, a: v }; }
function rotate(n) {
    items = [];
    if (n == 0) { items.push(makeA(1)); }
    if (n == 1) { items.push(makeB(2)); }
    if (n == 2) { items.push(makeC(3)); }
    if (n == 3) { items.push(makeD(4)); }
    if (n == 4) { items.push(makeE(5)); }
}
function bench() {
    var s = 0;
    for (var r = 0; r < 30; r++) { s = (s + items[0].a) % 10007; }
    return s;
}
)JS");
    for (int round = 0; round < 12; round++) {
        engine.call("rotate", {Value::smi(round % 5)});
        engine.call("bench");
    }
    // However it resolves (megamorphic feedback or disabled opt), the
    // engine must not thrash forever:
    EXPECT_LE(engine.compilations, 14u);
}

TEST(Deopt, DeoptLogRecordsCategories)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
var total = 0;
function bench() {
    for (var i = 0; i < 1000; i++) { total = total + 300000; }
    return total;
}
)JS");
    for (int i = 0; i < 6; i++)
        engine.call("bench");
    ASSERT_FALSE(engine.deoptLog.empty());
    for (const auto &d : engine.deoptLog) {
        EXPECT_EQ(d.category, deoptCategoryOf(d.reason));
        EXPECT_GT(d.atCycle, 0u);
    }
}
