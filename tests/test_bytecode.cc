/** @file Unit tests for the AST -> bytecode compiler. */

#include <gtest/gtest.h>

#include "bytecode/compiler.hh"
#include "frontend/parser.hh"

using namespace vspec;

class BytecodeTest : public ::testing::Test
{
  protected:
    BytecodeTest() : ctx(8u << 20), globals(ctx) {}

    FunctionId
    compile(const std::string &src)
    {
        BytecodeCompiler compiler(ctx, globals, functions);
        return compiler.compileProgram(parseProgram(src));
    }

    const FunctionInfo &
    fn(const std::string &name)
    {
        return functions.at(functions.idOf(name));
    }

    VMContext ctx;
    GlobalRegistry globals;
    FunctionTable functions;
};

TEST_F(BytecodeTest, FunctionsRegisteredAndBound)
{
    compile("function f(a) { return a; } function g() { return 1; }");
    EXPECT_NE(functions.idOf("f"), kInvalidFunction);
    EXPECT_NE(functions.idOf("g"), kInvalidFunction);
    EXPECT_NE(functions.idOf("__main__"), kInvalidFunction);
    // Hoisted into globals as function cells.
    EXPECT_TRUE(globals.exists("f"));
    Value fv = globals.load(globals.indexOf("f"));
    EXPECT_TRUE(ctx.isFunction(fv));
    EXPECT_EQ(ctx.functionIdOf(fv.asAddr()), functions.idOf("f"));
}

TEST_F(BytecodeTest, ParamAndRegisterLayout)
{
    compile("function f(a, b) { var x = a; var y = b; return x; }");
    const FunctionInfo &f = fn("f");
    EXPECT_EQ(f.paramCount, 2u);
    // this + 2 params + 2 locals, plus expression temps.
    EXPECT_GE(f.registerCount, 5u);
}

TEST_F(BytecodeTest, ReturnAlwaysPresent)
{
    compile("function f() { var x = 1; }");
    const FunctionInfo &f = fn("f");
    ASSERT_FALSE(f.bytecode.empty());
    EXPECT_EQ(f.bytecode.back().op, Bc::Return);
}

TEST_F(BytecodeTest, LoopUsesJumpLoop)
{
    compile("function f(n) { var s = 0; "
            "for (var i = 0; i < n; i++) { s += i; } return s; }");
    const FunctionInfo &f = fn("f");
    bool has_jump_loop = false;
    for (const auto &ins : f.bytecode) {
        if (ins.op == Bc::JumpLoop) {
            has_jump_loop = true;
            EXPECT_LT(ins.a, static_cast<i32>(f.bytecode.size()));
        }
    }
    EXPECT_TRUE(has_jump_loop);
}

TEST_F(BytecodeTest, WhileContinueIsBackwardJumpLoop)
{
    compile("function f(n) { var i = 0; while (i < n) { i++; "
            "if (i == 3) { continue; } } return i; }");
    const FunctionInfo &f = fn("f");
    int backward_loops = 0;
    for (size_t i = 0; i < f.bytecode.size(); i++) {
        const auto &ins = f.bytecode[i];
        if (ins.op == Bc::JumpLoop) {
            EXPECT_LE(static_cast<size_t>(ins.a), i);
            backward_loops++;
        }
    }
    EXPECT_GE(backward_loops, 2);  // continue + normal back edge
}

TEST_F(BytecodeTest, FeedbackSlotsAllocated)
{
    compile("function f(a, b) { return a + b * a; }");
    const FunctionInfo &f = fn("f");
    EXPECT_GE(f.feedback.size(), 2u);  // one slot per binary op
}

TEST_F(BytecodeTest, CallOperandPacking)
{
    EXPECT_EQ(callArgc(packCall(3, 7)), 3);
    EXPECT_EQ(callSlot(packCall(3, 7)), 7);
    EXPECT_EQ(callArgc(packCall(0, 0)), 0);
}

TEST_F(BytecodeTest, NumberLiteralsSmiVsConstant)
{
    compile("function f() { return 5 + 2.5; }");
    const FunctionInfo &f = fn("f");
    bool has_lda_smi = false, has_lda_const = false;
    for (const auto &ins : f.bytecode) {
        if (ins.op == Bc::LdaSmi)
            has_lda_smi = true;
        if (ins.op == Bc::LdaConst)
            has_lda_const = true;
    }
    EXPECT_TRUE(has_lda_smi);
    EXPECT_TRUE(has_lda_const);
    ASSERT_FALSE(f.constants.empty());
    EXPECT_DOUBLE_EQ(ctx.numberOf(f.constants[0]), 2.5);
}

TEST_F(BytecodeTest, TopLevelVarsBecomeGlobals)
{
    compile("var counter = 7;");
    EXPECT_TRUE(globals.exists("counter"));
}

TEST_F(BytecodeTest, GlobalRegistryCellsLiveInSimulatedMemory)
{
    u32 idx = globals.indexOf("g1");
    globals.store(idx, Value::smi(11));
    EXPECT_EQ(ctx.heap.readValue(globals.cellAddr(idx)).asSmi(), 11);
    EXPECT_EQ(globals.writeCount(idx), 1u);
    globals.store(idx, Value::smi(12));
    EXPECT_EQ(globals.writeCount(idx), 2u);
}

TEST_F(BytecodeTest, BreakOutsideLoopFails)
{
    EXPECT_THROW(compile("function f() { break; }"), CompileError);
    EXPECT_THROW(compile("function f() { continue; }"), CompileError);
}

TEST_F(BytecodeTest, DisassemblyMentionsOpcodes)
{
    compile("function f(a) { return a * 3; }");
    std::string dis = fn("f").disassemble(ctx);
    EXPECT_NE(dis.find("Mul"), std::string::npos);
    EXPECT_NE(dis.find("Return"), std::string::npos);
}
