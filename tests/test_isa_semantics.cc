/** @file Property-style sweeps over ISA helper semantics. */

#include <gtest/gtest.h>

#include "isa/isa.hh"

using namespace vspec;

TEST(IsaSemantics, EveryOpcodeHasAName)
{
    for (int op = 0; op <= static_cast<int>(MOp::JsChkMap); op++)
        EXPECT_STRNE(mopName(static_cast<MOp>(op)), "?");
    for (int c = 0; c <= static_cast<int>(Cond::Al); c++)
        EXPECT_STRNE(condName(static_cast<Cond>(c)), "?");
}

TEST(IsaSemantics, ClassPredicatesAreDisjointForLoadsStores)
{
    for (int op = 0; op <= static_cast<int>(MOp::JsChkMap); op++) {
        MInst m;
        m.op = static_cast<MOp>(op);
        EXPECT_FALSE(m.isLoad() && m.isStore())
            << mopName(m.op) << " is both load and store";
    }
}

TEST(IsaSemantics, SmiExtensionLoadsAreLoads)
{
    for (MOp op : {MOp::JsLdrSmiI, MOp::JsLdurSmiI, MOp::JsLdrSmiR,
                   MOp::JsLdrSmiRS, MOp::JsLdurSmiR, MOp::JsLdrSmiX}) {
        MInst m;
        m.op = op;
        EXPECT_TRUE(m.isSmiExtensionLoad());
        EXPECT_TRUE(m.isLoad());
        EXPECT_FALSE(m.isFloat());
    }
    MInst plain;
    plain.op = MOp::LdrW;
    EXPECT_FALSE(plain.isSmiExtensionLoad());
}

TEST(IsaSemantics, PaperExtensionHasSixLoadVariants)
{
    // §V-A: "We add six new SMI load instructions, all belonging to
    // the ld(u)r family" — immediate, register, scaled, unscaled.
    int variants = 0;
    for (int op = 0; op <= static_cast<int>(MOp::JsChkMap); op++) {
        MInst m;
        m.op = static_cast<MOp>(op);
        if (m.isSmiExtensionLoad())
            variants++;
    }
    EXPECT_EQ(variants, 6);
}

TEST(IsaSemantics, BranchPredicates)
{
    MInst b;
    b.op = MOp::Bcond;
    EXPECT_TRUE(b.isBranch());
    EXPECT_TRUE(b.isCondBranch());
    b.op = MOp::B;
    EXPECT_TRUE(b.isBranch());
    EXPECT_FALSE(b.isCondBranch());
    b.op = MOp::Add;
    EXPECT_FALSE(b.isBranch());
}

TEST(IsaSemantics, SpecialRegistersMatchThePaper)
{
    // Fig. 11/12: REG_BA (bailout handler), REG_PC, REG_RE.
    EXPECT_EQ(static_cast<int>(SpecialReg::REG_BA), 0);
    EXPECT_EQ(static_cast<int>(SpecialReg::REG_PC), 1);
    EXPECT_EQ(static_cast<int>(SpecialReg::REG_RE), 2);
}

TEST(IsaSemantics, FloatPredicateCoversFpOps)
{
    for (MOp op : {MOp::FAdd, MOp::FSub, MOp::FMul, MOp::FDiv, MOp::FCmp,
                   MOp::LdrD, MOp::StrD}) {
        MInst m;
        m.op = op;
        EXPECT_TRUE(m.isFloat()) << mopName(op);
    }
    MInst i;
    i.op = MOp::Add;
    EXPECT_FALSE(i.isFloat());
}
