/** @file Tests for the §II-B deoptimization taxonomy. */

#include <gtest/gtest.h>

#include <set>

#include "ir/deopt_reasons.hh"

using namespace vspec;

TEST(DeoptReasons, ExactlyFiftyTwoReasons)
{
    // §II-B: "The V8 JavaScript engine has 52 types of deoptimization
    // checks, divided across three deoptimization categories."
    EXPECT_EQ(kNumDeoptReasons, 52);
}

TEST(DeoptReasons, EveryReasonHasUniqueCategoryAndName)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumDeoptReasons; i++) {
        auto r = static_cast<DeoptReason>(i);
        EXPECT_TRUE(names.insert(deoptReasonName(r)).second)
            << "duplicate name " << deoptReasonName(r);
        EXPECT_STRNE(deoptReasonName(r), "?");
    }
}

TEST(DeoptReasons, CategoriesPartitionTheReasons)
{
    size_t total = reasonsInCategory(DeoptCategory::Eager).size()
                   + reasonsInCategory(DeoptCategory::Lazy).size()
                   + reasonsInCategory(DeoptCategory::Soft).size();
    EXPECT_EQ(total, static_cast<size_t>(kNumDeoptReasons));
    // Eager is by far the most common category (the paper's focus).
    EXPECT_GT(reasonsInCategory(DeoptCategory::Eager).size(),
              reasonsInCategory(DeoptCategory::Soft).size());
    EXPECT_GT(reasonsInCategory(DeoptCategory::Eager).size(),
              reasonsInCategory(DeoptCategory::Lazy).size());
}

TEST(DeoptReasons, GroupAssignmentsMatchThePaper)
{
    EXPECT_EQ(checkGroupOf(DeoptReason::Smi), CheckGroup::Smi);
    EXPECT_EQ(checkGroupOf(DeoptReason::NotASmi), CheckGroup::NotASmi);
    EXPECT_EQ(checkGroupOf(DeoptReason::WrongMap), CheckGroup::Type);
    EXPECT_EQ(checkGroupOf(DeoptReason::OutOfBounds),
              CheckGroup::Boundary);
    EXPECT_EQ(checkGroupOf(DeoptReason::Overflow),
              CheckGroup::Arithmetic);
    EXPECT_EQ(checkGroupOf(DeoptReason::DivisionByZero),
              CheckGroup::Arithmetic);
    EXPECT_EQ(checkGroupOf(DeoptReason::LostPrecision),
              CheckGroup::Arithmetic);
    EXPECT_EQ(checkGroupOf(DeoptReason::Hole), CheckGroup::Other);
}

TEST(DeoptReasons, SoftReasonsAreInsufficientFeedback)
{
    for (DeoptReason r : reasonsInCategory(DeoptCategory::Soft)) {
        std::string name = deoptReasonName(r);
        EXPECT_NE(name.find("InsufficientTypeFeedback"),
                  std::string::npos);
    }
}

TEST(DeoptReasons, LazyReasonsAreCodeInvalidation)
{
    auto lazy = reasonsInCategory(DeoptCategory::Lazy);
    EXPECT_EQ(lazy.size(), 2u);
}

class AllReasons : public ::testing::TestWithParam<int>
{
};

TEST_P(AllReasons, GroupIsValidForEveryReason)
{
    auto r = static_cast<DeoptReason>(GetParam());
    CheckGroup g = checkGroupOf(r);
    EXPECT_LT(static_cast<int>(g),
              static_cast<int>(CheckGroup::NumGroups));
    EXPECT_STRNE(checkGroupName(g), "?");
    EXPECT_STRNE(deoptCategoryName(deoptCategoryOf(r)), "?");
}

INSTANTIATE_TEST_SUITE_P(Taxonomy, AllReasons,
                         ::testing::Range(0, kNumDeoptReasons));
