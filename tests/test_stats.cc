/** @file Tests for the statistics toolkit (§IV analyses). */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hh"

using namespace vspec;
using namespace vspec::stats;

TEST(Stats, Descriptive)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(median(xs), 4.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 9.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(Stats, EmptyAndSingletonInputs)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, LinearRegressionExactFit)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {3, 5, 7, 9, 11};  // y = 1 + 2x
    auto r = linearRegression(x, y);
    EXPECT_NEAR(r.intercept, 1.0, 1e-9);
    EXPECT_NEAR(r.slope, 2.0, 1e-9);
    EXPECT_NEAR(r.r2, 1.0, 1e-9);
}

TEST(Stats, LinearRegressionNoisyFit)
{
    std::vector<double> x, y;
    Rng rng(7);
    for (int i = 0; i < 200; i++) {
        double xi = i * 0.1;
        x.push_back(xi);
        y.push_back(2.0 + 0.5 * xi + rng.nextGaussian() * 0.5);
    }
    auto r = linearRegression(x, y);
    EXPECT_NEAR(r.slope, 0.5, 0.1);
    EXPECT_GT(r.r2, 0.8);
    EXPECT_LT(r.r2, 1.0);
}

TEST(Stats, PearsonPerfectAndNone)
{
    std::vector<double> x = {1, 2, 3, 4, 5, 6};
    std::vector<double> y = {2, 4, 6, 8, 10, 12};
    auto c = pearson(x, y);
    EXPECT_NEAR(c.r, 1.0, 1e-9);
    EXPECT_LT(c.pValue, 1e-6);

    std::vector<double> anti = {12, 10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, anti).r, -1.0, 1e-9);

    // Uncorrelated data: |r| small, p large.
    Rng rng(99);
    std::vector<double> a, b;
    for (int i = 0; i < 100; i++) {
        a.push_back(rng.nextGaussian());
        b.push_back(rng.nextGaussian());
    }
    auto c2 = pearson(a, b);
    EXPECT_LT(std::abs(c2.r), 0.3);
    EXPECT_GT(c2.pValue, 0.01);
}

TEST(Stats, StudentTCdfKnownValues)
{
    // Reference values (scipy.stats.t.cdf).
    EXPECT_NEAR(studentTCdf(0.0, 10), 0.5, 1e-6);
    EXPECT_NEAR(studentTCdf(1.812, 10), 0.95, 0.002);
    EXPECT_NEAR(studentTCdf(-1.812, 10), 0.05, 0.002);
    EXPECT_NEAR(studentTCdf(2.0, 60), 0.975, 0.003);
}

TEST(Stats, WelchTTestSeparatesDifferentMeans)
{
    Rng rng(5);
    std::vector<double> a, b, c;
    for (int i = 0; i < 60; i++) {
        a.push_back(100 + rng.nextGaussian() * 5);
        b.push_back(110 + rng.nextGaussian() * 5);
        c.push_back(100 + rng.nextGaussian() * 5);
    }
    EXPECT_LT(welchTTest(a, b).pValue, 0.001);   // clearly different
    EXPECT_GT(welchTTest(a, c).pValue, 0.05);    // same distribution
}

TEST(Stats, BonferroniScalesAlpha)
{
    EXPECT_DOUBLE_EQ(bonferroni(0.05, 51), 0.05 / 51);
    EXPECT_DOUBLE_EQ(bonferroni(0.05, 0), 0.05);
}

TEST(Stats, BootstrapCiCoversTheMean)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 100; i++)
        xs.push_back(50 + rng.nextGaussian() * 10);
    auto ci = bootstrapMeanCi(xs, 0.95, 500);
    double m = mean(xs);
    EXPECT_LT(ci.lo, m);
    EXPECT_GT(ci.hi, m);
    EXPECT_LT(ci.hi - ci.lo, 10.0);  // reasonably tight at n=100
}

TEST(Stats, IncompleteBetaSanity)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2, 3, 1.0), 1.0);
    // I_x(1,1) = x (uniform).
    EXPECT_NEAR(incompleteBeta(1, 1, 0.37), 0.37, 1e-9);
    // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
    EXPECT_NEAR(incompleteBeta(2.5, 4.0, 0.3),
                1.0 - incompleteBeta(4.0, 2.5, 0.7), 1e-9);
}

class PercentileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PercentileSweep, MonotoneInP)
{
    std::vector<double> xs = {5, 1, 9, 3, 7, 2, 8, 4, 6};
    double p = GetParam();
    EXPECT_LE(percentile(xs, p), percentile(xs, std::min(100.0, p + 10)));
    EXPECT_GE(percentile(xs, p), 1.0);
    EXPECT_LE(percentile(xs, p), 9.0);
}

INSTANTIATE_TEST_SUITE_P(Range, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 100.0));
