/** @file Tests for caches, branch predictor and the timing models. */

#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace vspec;

TEST(Caches, HitsAfterFirstAccess)
{
    CacheLevel l1({32 * 1024, 8, 64, 4});
    EXPECT_FALSE(l1.access(0x1000));
    EXPECT_TRUE(l1.access(0x1000));
    EXPECT_TRUE(l1.access(0x1020));  // same line
    EXPECT_FALSE(l1.access(0x1040)); // next line
    EXPECT_EQ(l1.misses, 2u);
    EXPECT_EQ(l1.hits, 2u);
}

TEST(Caches, LruEviction)
{
    // 2-way, 2-set tiny cache: lines mapping to set 0 are 0, 256, 512...
    CacheLevel c({4 * 64, 2, 64, 1});
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(128));
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(256));  // evicts 128 (LRU)
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(128));
}

TEST(Caches, HierarchyLatencies)
{
    CacheHierarchy h({32 * 1024, 8, 64, 4}, {256 * 1024, 8, 64, 12}, 90);
    EXPECT_EQ(h.access(0x4000), 90u);  // cold: memory
    EXPECT_EQ(h.access(0x4000), 4u);   // L1 hit
    // Evict from L1 by touching many lines mapping widely; L2 keeps it.
    // Conflict in the 64-set L1 (stride 4 KiB) but not in the 512-set
    // L2, so the line is evicted from L1 yet still hits in L2.
    for (u32 i = 1; i <= 10; i++)
        h.access(0x4000 + i * 4096);
    u32 lat = h.access(0x4000);
    EXPECT_TRUE(lat == 12 || lat == 4);
}

TEST(BranchPredictor, LearnsStableDirection)
{
    BranchPredictor bp(10);
    int wrong = 0;
    for (int i = 0; i < 100; i++) {
        if (!bp.predictAndUpdate(0x40, true, false))
            wrong++;
    }
    // Gshare trains one table entry per history pattern, so the
    // warm-up costs up to ~history-length mispredictions.
    EXPECT_LE(wrong, 15);
    EXPECT_GE(bp.branches, 100u);
}

TEST(BranchPredictor, NeverTakenDeoptBranchesPredictPerfectly)
{
    // §IV-B: deopt branches are almost always predicted correctly
    // because they are almost never taken.
    BranchPredictor bp(12);
    for (int i = 0; i < 1000; i++)
        bp.predictAndUpdate(0x80, false, true);
    EXPECT_EQ(bp.deoptBranches, 1000u);
    EXPECT_LE(bp.deoptMispredicts, 2u);
}

namespace
{

CommitInfo
alu(u8 dst, u8 src)
{
    static MInst m;
    m.op = MOp::Add;
    CommitInfo ci;
    ci.inst = &m;
    ci.cls = InstClass::Alu;
    ci.dst = dst;
    ci.srcs[0] = src;
    return ci;
}

CommitInfo
load(u8 dst, Addr addr)
{
    static MInst m;
    m.op = MOp::LdrW;
    CommitInfo ci;
    ci.inst = &m;
    ci.cls = InstClass::Load;
    ci.isMem = true;
    ci.isLoad = true;
    ci.memAddr = addr;
    ci.dst = dst;
    return ci;
}

} // namespace

TEST(TimingModels, FastModelRetiresMultiplePerCycle)
{
    auto model = makeTimingModel(CpuConfig::arm64Server());
    for (int i = 0; i < 400; i++)
        model->onCommit(alu(static_cast<u8>(i % 8),
                            static_cast<u8>((i + 4) % 8)));
    // Width-4 machine with dependency distance 4: > 1 IPC.
    EXPECT_LT(model->stats.cycles, 400u);
    EXPECT_GT(model->stats.cycles, 50u);
}

TEST(TimingModels, InOrderIsScalar)
{
    auto model = makeTimingModel(CpuConfig::inOrderA55());
    for (int i = 0; i < 100; i++)
        model->onCommit(alu(1, 2));
    EXPECT_GE(model->stats.cycles, 100u);
}

TEST(TimingModels, LoadUseStallsInOrder)
{
    auto independent = makeTimingModel(CpuConfig::inOrderA55());
    auto dependent = makeTimingModel(CpuConfig::inOrderA55());
    for (int i = 0; i < 50; i++) {
        independent->onCommit(load(1, 0x1000));
        independent->onCommit(alu(2, 3));  // independent of the load
        dependent->onCommit(load(1, 0x1000));
        dependent->onCommit(alu(2, 1));    // consumes the load
    }
    EXPECT_GT(dependent->stats.cycles, independent->stats.cycles);
}

TEST(TimingModels, O3OverlapsDependentChains)
{
    // Each load feeds a consumer; chains are independent of each
    // other. The in-order core stalls on every load-use pair; the O3
    // window overlaps the misses across chains.
    auto o3 = makeTimingModel(CpuConfig::hpd());
    auto ino = makeTimingModel(CpuConfig::inOrderA55());
    for (int i = 0; i < 64; i++) {
        CommitInfo ld = load(static_cast<u8>(i % 8),
                             0x10000u + static_cast<u32>(i) * 4096);
        CommitInfo use = alu(20, static_cast<u8>(i % 8));
        o3->onCommit(ld);
        o3->onCommit(use);
        ino->onCommit(ld);
        ino->onCommit(use);
    }
    EXPECT_LT(o3->stats.cycles, ino->stats.cycles);
}

TEST(TimingModels, MispredictsCostCycles)
{
    CpuConfig cfg = CpuConfig::arm64Server();
    auto stable = makeTimingModel(cfg);
    auto flaky = makeTimingModel(cfg);
    static MInst bm;
    bm.op = MOp::Bcond;
    u32 lcg = 12345;
    for (int i = 0; i < 500; i++) {
        CommitInfo b;
        b.inst = &bm;
        b.cls = InstClass::CondBranch;
        b.pc = 7;
        b.taken = true;
        stable->onCommit(b);
        lcg = lcg * 1103515245u + 12345u;
        b.taken = (lcg >> 16) & 1;  // pseudo-random
        flaky->onCommit(b);
    }
    EXPECT_GT(flaky->stats.mispredicts, stable->stats.mispredicts);
    EXPECT_GT(flaky->stats.cycles, stable->stats.cycles);
}

TEST(TimingModels, ExternalAdvanceAccumulates)
{
    auto model = makeTimingModel(CpuConfig::arm64Server());
    model->onCommit(alu(1, 2));
    Cycles before = model->cycles();
    model->advanceExternal(500);
    EXPECT_EQ(model->cycles(), before + 500);
    for (int i = 0; i < 16; i++)
        model->onCommit(alu(1, 2));
    EXPECT_GT(model->cycles(), before + 500);
}

TEST(TimingModels, StatsAggregation)
{
    SimStats a, b;
    a.cycles = 10;
    a.instructions = 20;
    b.cycles = 5;
    b.instructions = 7;
    b.checkInstructions = 3;
    a += b;
    EXPECT_EQ(a.cycles, 15u);
    EXPECT_EQ(a.instructions, 27u);
    EXPECT_EQ(a.checkInstructions, 3u);
}
