/** @file §V ISA extension: fusion correctness + performance effect. */

#include <gtest/gtest.h>

#include "runtime/engine.hh"

using namespace vspec;

namespace
{

const char *kSmiKernel = R"JS(
var a = [];
var b = [];
function setup() {
    for (var i = 0; i < 64; i++) { a.push(i % 23 + 1); b.push(i % 17 + 1); }
}
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 64; i++) { s = (s + a[i] * b[i]) % 65536; }
    return s;
}
)JS";

} // namespace

TEST(SmiExtension, SameResultsWithAndWithoutExtension)
{
    EngineConfig def;
    Engine e1(def);
    e1.loadProgram(kSmiKernel);
    EngineConfig ext;
    ext.smiLoadExtension = true;
    Engine e2(ext);
    e2.loadProgram(kSmiKernel);
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(e1.vm.display(e1.call("bench")),
                  e2.vm.display(e2.call("bench")));
    }
}

TEST(SmiExtension, FusedLoadsAppearInCode)
{
    EngineConfig cfg;
    cfg.smiLoadExtension = true;
    Engine engine(cfg);
    engine.loadProgram(kSmiKernel);
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    FunctionId fid = engine.functions.idOf("bench");
    const FunctionInfo &fn = engine.functions.at(fid);
    ASSERT_TRUE(fn.hasCode());
    const CodeObject &code = *engine.codeObjects[fn.codeId];
    EXPECT_TRUE(code.usedSmiExtension);
    int fused = 0, msr = 0;
    for (const auto &m : code.code) {
        if (m.isSmiExtensionLoad())
            fused++;
        if (m.op == MOp::Msr)
            msr++;
    }
    EXPECT_GE(fused, 2);  // a[i] and b[i]
    EXPECT_GE(msr, 1);    // Fig. 11 prologue: REG_BA setup
}

TEST(SmiExtension, FewerInstructionsThanDefault)
{
    auto code_size = [](bool extension) {
        EngineConfig cfg;
        cfg.smiLoadExtension = extension;
        Engine engine(cfg);
        engine.loadProgram(kSmiKernel);
        for (int i = 0; i < 3; i++)
            engine.call("bench");
        FunctionId fid = engine.functions.idOf("bench");
        const FunctionInfo &fn = engine.functions.at(fid);
        return engine.codeObjects[fn.codeId]->code.size();
    };
    // Each fused load replaces ldr + tst + b.ne + asr (saving 3), at
    // the cost of the 2-instruction MSR REG_BA prologue (Fig. 11).
    EXPECT_LT(code_size(true), code_size(false));
}

TEST(SmiExtension, FailedFusedLoadDeoptimizesCorrectly)
{
    // A double sneaks into the array after optimization: the fused
    // load's implicit Not-a-SMI check must trigger the bailout with a
    // correctly rebuilt frame (commit-phase exception path).
    EngineConfig cfg;
    cfg.smiLoadExtension = true;
    Engine engine(cfg);
    engine.loadProgram(R"JS(
var a = [];
function setup() { for (var i = 0; i < 16; i++) { a.push(i + 1); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 16; i++) { s = s + a[i]; }
    return s;
}
function poison() { a[7] = 2.5; }
)JS");
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(engine.vm.display(engine.call("bench")), "136");
    u64 before = engine.eagerDeopts;
    engine.call("poison");
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "130.5");
    EXPECT_GE(engine.eagerDeopts + engine.lazyDeopts, before);
}

TEST(SmiExtension, SpeedsUpSmiKernelOnDetailedModels)
{
    auto steady = [](bool extension, const CpuConfig &core) {
        EngineConfig cfg;
        cfg.smiLoadExtension = extension;
        cfg.cpu = core;
        Engine engine(cfg);
        engine.loadProgram(kSmiKernel);
        for (int i = 0; i < 6; i++)
            engine.call("bench");
        Cycles t0 = engine.totalCycles();
        engine.call("bench");
        return engine.totalCycles() - t0;
    };
    // The in-order core must benefit (paper Fig. 13: avg ~3 %).
    Cycles def = steady(false, CpuConfig::inOrderA55());
    Cycles ext = steady(true, CpuConfig::inOrderA55());
    EXPECT_LT(ext, def);
}

TEST(SmiExtension, NoFusionWithoutConfigFlag)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(kSmiKernel);
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    FunctionId fid = engine.functions.idOf("bench");
    const FunctionInfo &fn = engine.functions.at(fid);
    const CodeObject &code = *engine.codeObjects[fn.codeId];
    for (const auto &m : code.code)
        EXPECT_FALSE(m.isSmiExtensionLoad());
}

TEST(MapCheckExtension, FusedMapChecksAppearAndValidate)
{
    // §VII ablation: jschkmap replaces the ldr+cmp pair of a WrongMap
    // check with one fused instruction.
    EngineConfig cfg;
    cfg.smiLoadExtension = true;
    cfg.mapCheckExtension = true;
    Engine engine(cfg);
    engine.loadProgram(kSmiKernel);
    EngineConfig plain;
    Engine ref(plain);
    ref.loadProgram(kSmiKernel);
    for (int i = 0; i < 6; i++) {
        EXPECT_EQ(engine.vm.display(engine.call("bench")),
                  ref.vm.display(ref.call("bench")));
    }
    FunctionId fid = engine.functions.idOf("bench");
    const FunctionInfo &fn = engine.functions.at(fid);
    ASSERT_TRUE(fn.hasCode());
    int fused_map = 0;
    for (const auto &m : engine.codeObjects[fn.codeId]->code)
        if (m.op == MOp::JsChkMap)
            fused_map++;
    EXPECT_GE(fused_map, 1);
}

TEST(MapCheckExtension, FailingFusedMapCheckStillDeopts)
{
    EngineConfig cfg;
    cfg.mapCheckExtension = true;
    Engine engine(cfg);
    engine.loadProgram(R"JS(
var o = { v: 5 };
function bench() { var s = 0;
for (var i = 0; i < 20; i++) { s = (s + o.v) % 1000; } return s; }
function reshape() { o = { pad: 1, v: 9 }; }
)JS");
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(engine.vm.display(engine.call("bench")), "100");
    engine.call("reshape");
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "180");
}
