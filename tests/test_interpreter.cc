/** @file Interpreter semantics tests (run with optimization disabled). */

#include <gtest/gtest.h>

#include "runtime/engine.hh"

using namespace vspec;

namespace
{

/** Evaluate `bench()` in an interpreter-only engine. */
std::string
evalProgram(const std::string &body)
{
    EngineConfig cfg;
    cfg.enableOptimization = false;
    Engine engine(cfg);
    engine.loadProgram(body);
    return engine.vm.display(engine.call("bench"));
}

std::string
evalExpr(const std::string &expr)
{
    return evalProgram("function bench() { return " + expr + "; }");
}

} // namespace

TEST(Interpreter, Arithmetic)
{
    EXPECT_EQ(evalExpr("1 + 2 * 3"), "7");
    EXPECT_EQ(evalExpr("10 / 4"), "2.5");
    EXPECT_EQ(evalExpr("7 % 3"), "1");
    EXPECT_EQ(evalExpr("-7 % 3"), "-1");
    EXPECT_EQ(evalExpr("2.5 + 2.5"), "5");
    EXPECT_EQ(evalExpr("1 / 0"), "Infinity");
    EXPECT_EQ(evalExpr("-1 / 0"), "-Infinity");
    EXPECT_EQ(evalExpr("0 / 0"), "NaN");
}

TEST(Interpreter, SmiOverflowPromotesToDouble)
{
    EXPECT_EQ(evalExpr("1073741823 + 1"), "1073741824");
    EXPECT_EQ(evalExpr("1073741823 * 1000"), "1073741823000");
}

TEST(Interpreter, BitwiseFollowsToInt32)
{
    EXPECT_EQ(evalExpr("5 & 3"), "1");
    EXPECT_EQ(evalExpr("5 | 3"), "7");
    EXPECT_EQ(evalExpr("5 ^ 3"), "6");
    EXPECT_EQ(evalExpr("1 << 31"), "-2147483648");
    EXPECT_EQ(evalExpr("-1 >>> 0"), "4294967295");
    EXPECT_EQ(evalExpr("-8 >> 1"), "-4");
    EXPECT_EQ(evalExpr("~5"), "-6");
    EXPECT_EQ(evalExpr("4294967296 | 0"), "0");       // 2^32 wraps
    EXPECT_EQ(evalExpr("4294967297 | 0"), "1");
    EXPECT_EQ(evalExpr("2.7 | 0"), "2");              // truncation
}

TEST(Interpreter, StringConcatAndCoercion)
{
    EXPECT_EQ(evalExpr("\"a\" + \"b\""), "\"ab\"");
    EXPECT_EQ(evalExpr("\"n=\" + 5"), "\"n=5\"");
    EXPECT_EQ(evalExpr("1 + \"2\""), "\"12\"");
    EXPECT_EQ(evalExpr("\"\" + true"), "\"true\"");
    EXPECT_EQ(evalExpr("\"\" + undefined"), "\"undefined\"");
}

TEST(Interpreter, Comparisons)
{
    EXPECT_EQ(evalExpr("1 < 2"), "true");
    EXPECT_EQ(evalExpr("2 <= 2"), "true");
    EXPECT_EQ(evalExpr("\"abc\" < \"abd\""), "true");
    EXPECT_EQ(evalExpr("\"a\" == \"a\""), "true");
    EXPECT_EQ(evalExpr("1 == 1.0"), "true");
    EXPECT_EQ(evalExpr("null == undefined"), "true");
    EXPECT_EQ(evalExpr("null === undefined"), "false");
    EXPECT_EQ(evalExpr("(0 / 0) == (0 / 0)"), "false");  // NaN
}

TEST(Interpreter, LogicalOperatorsReturnValues)
{
    EXPECT_EQ(evalExpr("0 || 5"), "5");
    EXPECT_EQ(evalExpr("3 || 5"), "3");
    EXPECT_EQ(evalExpr("0 && 5"), "0");
    EXPECT_EQ(evalExpr("1 && 5"), "5");
    EXPECT_EQ(evalExpr("!0"), "true");
    EXPECT_EQ(evalExpr("!\"\""), "true");
}

TEST(Interpreter, TypeofOperator)
{
    EXPECT_EQ(evalExpr("typeof 1"), "\"number\"");
    EXPECT_EQ(evalExpr("typeof \"s\""), "\"string\"");
    EXPECT_EQ(evalExpr("typeof undefined"), "\"undefined\"");
    EXPECT_EQ(evalExpr("typeof {}"), "\"object\"");
}

TEST(Interpreter, ControlFlow)
{
    EXPECT_EQ(evalProgram(R"JS(
function bench() {
    var s = 0;
    for (var i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        if (i == 9) { break; }
        s = s + i;
    }
    return s;
})JS"), "16");  // 1+3+5+7

    EXPECT_EQ(evalProgram(R"JS(
function bench() {
    var i = 0;
    var n = 0;
    while (i < 5) { i++; n = n * 2 + 1; }
    return n;
})JS"), "31");
}

TEST(Interpreter, TernaryAndUpdate)
{
    EXPECT_EQ(evalExpr("1 ? 10 : 20"), "10");
    EXPECT_EQ(evalProgram(
        "function bench() { var i = 5; var a = i++; return a * 100 + i; }"),
        "506");
    EXPECT_EQ(evalProgram(
        "function bench() { var i = 5; var a = ++i; return a * 100 + i; }"),
        "606");
}

TEST(Interpreter, FunctionsAndRecursion)
{
    EXPECT_EQ(evalProgram(R"JS(
function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
function bench() { return fib(12); }
)JS"), "144");
}

TEST(Interpreter, ObjectsAndMethods)
{
    EXPECT_EQ(evalProgram(R"JS(
function area(r) { return r.w * r.h; }
function scale(r) { r.w = r.w * this.f; return r; }
function bench() {
    var rect = { w: 3, h: 4 };
    var scaler = { f: 10, run: scale };
    return area(scaler.run(rect));
})JS"), "120");
}

TEST(Interpreter, ArraysEndToEnd)
{
    EXPECT_EQ(evalProgram(R"JS(
function bench() {
    var a = [];
    for (var i = 0; i < 5; i++) { a.push(i * i); }
    a[0] = 100;
    return a.join(",") + "|" + a.length + "|" + a.indexOf(9);
})JS"), "\"100,1,4,9,16|5|3\"");
}

TEST(Interpreter, OutOfBoundsReadsUndefined)
{
    EXPECT_EQ(evalProgram(R"JS(
function bench() {
    var a = [1, 2];
    return "" + a[5];
})JS"), "\"undefined\"");
}

TEST(Interpreter, GlobalsAcrossFunctions)
{
    EXPECT_EQ(evalProgram(R"JS(
var total = 0;
function addIt(x) { total = total + x; }
function bench() { addIt(3); addIt(4); return total; }
)JS"), "7");
}

TEST(Interpreter, MinusZeroSemantics)
{
    EXPECT_EQ(evalExpr("1 / (-1 * 0)"), "-Infinity");
    EXPECT_EQ(evalExpr("1 / (0 * -5)"), "-Infinity");
    EXPECT_EQ(evalExpr("1 / (-5 % 5)"), "-Infinity");
}
