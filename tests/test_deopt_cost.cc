/** @file vdcost episode-tracker tests: synthetic hook-driven unit
 *  coverage of the phase decomposition, storm/flip-flop detection and
 *  attribution invariants, plus engine-level reconciliation against
 *  deoptLog / trace counters and the cycle-neutrality guarantee. The
 *  suite-wide differential legs live in test_differential.cc and
 *  test_fuzz_differential.cc. */

#include <gtest/gtest.h>

#include "runtime/deopt_cost.hh"
#include "runtime/engine.hh"
#include "support/json.hh"

using namespace vspec;

namespace
{

FunctionInfo
makeFn(FunctionId id, i32 line = 11)
{
    FunctionInfo fn;
    fn.id = id;
    fn.name = "f" + std::to_string(id);
    fn.bcPositions.push_back(SrcPos{line, 1});
    return fn;
}

i64
phaseSum(const EpisodeTracker &t)
{
    i64 sum = 0;
    for (const DeoptEpisode &ep : t.episodes())
        sum += ep.phases.total();
    return sum;
}

/** A program whose SMI add overflows after tier-up: one eager
 *  Overflow deopt, then convergence (test_deopt.cc's shape). */
constexpr const char *kOverflowProgram = R"JS(
var total = 0;
function bench() {
    for (var i = 0; i < 1000; i++) { total = total + 300000; }
    return total;
}
function verify() { return total; }
)JS";

} // namespace

// ---------------------------------------------------------------------
// Synthetic hook-driven unit tests
// ---------------------------------------------------------------------

TEST(EpisodeTracker, DisabledHooksAreNoOps)
{
    EpisodeTracker t;
    FunctionInfo fn = makeFn(1);
    t.onFrameEnter(1, true, 0, 100);
    t.onDeopt(fn, DeoptReason::Overflow, DeoptCategory::Eager, 5,
              SrcPos{11, 1}, 10, 150);
    t.onBailoutAccounted(10, 750);
    t.onFrameLeave(50, 800);
    t.finish(50, 800);
    EXPECT_FALSE(t.enabled());
    EXPECT_TRUE(t.episodes().empty());
    EXPECT_EQ(t.attributedCycles(), 0);
}

TEST(EpisodeTracker, EagerEpisodePhasesDecomposeExactly)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(1);

    // Optimized call deopts mid-flight: the invoke frame then runs the
    // interpreter tail (resumeFrame), which the episode owns as replay.
    t.onFrameEnter(1, true, /*interp=*/0, /*total=*/100);
    t.onDeopt(fn, DeoptReason::Overflow, DeoptCategory::Eager, 5,
              SrcPos{11, 1}, 10, 150);
    t.onBailoutAccounted(10, 750);     // bailout = 750 - 150 = 600
    t.onFrameLeave(50, 800);           // replay  =  50 -  10 =  40

    ASSERT_EQ(t.episodes().size(), 1u);
    const DeoptEpisode &ep = t.episodes()[0];
    EXPECT_EQ(ep.site.function, 1u);
    EXPECT_EQ(ep.site.bytecodeOffset, 5u);
    EXPECT_EQ(ep.site.line, 11);
    EXPECT_EQ(ep.site.reason, DeoptReason::Overflow);
    EXPECT_EQ(ep.phases.bailout, 600u);
    EXPECT_EQ(ep.phases.replay, 40u);
    EXPECT_EQ(ep.phases.recompile, 0u);
    EXPECT_FALSE(ep.closed);

    // Optimized re-entry closes the episode; with no steady-state
    // baseline (no clean optimized call before the deopt) the residual
    // stays unmeasured rather than guessing.
    t.onFrameEnter(1, true, 50, 900);
    t.onFrameLeave(50, 950);
    EXPECT_TRUE(t.episodes()[0].closed);
    EXPECT_TRUE(t.episodes()[0].closedByReentry);
    EXPECT_FALSE(t.episodes()[0].residualMeasured);
    EXPECT_EQ(t.episodes()[0].phases.residual, 0);

    EXPECT_EQ(t.attributedCycles(), 640);
    EXPECT_EQ(phaseSum(t), t.attributedCycles());
}

TEST(EpisodeTracker, ResidualIsDeltaAgainstPreDeoptSteadyState)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(1);

    // Two clean optimized calls establish the steady state: 100 cycles
    // per call.
    t.onFrameEnter(1, true, 0, 1000);
    t.onFrameLeave(0, 1100);
    t.onFrameEnter(1, true, 0, 1100);
    t.onFrameLeave(0, 1200);

    // Deopt, bailout, replay, re-entry.
    t.onFrameEnter(1, true, 0, 1200);
    t.onDeopt(fn, DeoptReason::Overflow, DeoptCategory::Eager, 5,
              SrcPos{11, 1}, 0, 1250);
    t.onBailoutAccounted(0, 1850);
    t.onFrameLeave(30, 1900);

    // First optimized call after re-entry runs 130 cycles: residual is
    // the signed delta against the pre-deopt mean, 130 - 100 = +30.
    t.onFrameEnter(1, true, 30, 1900);
    t.onFrameLeave(30, 2030);

    ASSERT_EQ(t.episodes().size(), 1u);
    const DeoptEpisode &ep = t.episodes()[0];
    EXPECT_TRUE(ep.residualMeasured);
    EXPECT_EQ(ep.phases.residual, 30);
    EXPECT_EQ(ep.phases.bailout, 600u);
    EXPECT_EQ(ep.phases.replay, 30u);
    EXPECT_EQ(t.attributedCycles(), 660);
    EXPECT_EQ(phaseSum(t), t.attributedCycles());
}

TEST(EpisodeTracker, LazyDeoptHasNoBailoutPhase)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(2, 7);

    // Lazy invalidation happens outside any frame of fn (storeGlobal
    // flips a dependency cell): no frame conversion, no 600-cycle
    // charge, so onBailoutAccounted must stay unarmed.
    t.onDeopt(fn, DeoptReason::CodeDependencyChange, DeoptCategory::Lazy,
              0, SrcPos{7, 1}, 0, 500);
    t.onBailoutAccounted(0, 9999);     // must be a no-op
    t.finish(0, 1000);

    ASSERT_EQ(t.episodes().size(), 1u);
    EXPECT_EQ(t.episodes()[0].phases.bailout, 0u);
    EXPECT_EQ(t.episodes()[0].category, DeoptCategory::Lazy);
    EXPECT_TRUE(t.episodes()[0].closed);
    EXPECT_FALSE(t.episodes()[0].closedByReentry);
    EXPECT_EQ(t.attributedCycles(), 0);
}

TEST(EpisodeTracker, SupersededEpisodesStayOneToOneWithDeoptLog)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(3);

    // A lazy invalidation followed by the re-entry discard logs two
    // DeoptRecords; the tracker must mirror that 1:1 — the first
    // episode closes as superseded when the second opens.
    t.onDeopt(fn, DeoptReason::CodeDependencyChange, DeoptCategory::Lazy,
              0, SrcPos{11, 1}, 0, 100);
    t.onDeopt(fn, DeoptReason::SharedCodeDeoptimized,
              DeoptCategory::Lazy, 0, SrcPos{11, 1}, 0, 200);
    t.finish(0, 300);

    ASSERT_EQ(t.episodes().size(), 2u);
    EXPECT_TRUE(t.episodes()[0].closed);
    EXPECT_FALSE(t.episodes()[0].closedByReentry);
    EXPECT_EQ(t.episodes()[0].closeCycle, 200u);
    EXPECT_TRUE(t.episodes()[1].closed);
}

TEST(EpisodeTracker, StormAndFlipFlopDetection)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(4);
    u64 interp = 0, total = 0;

    // Three rounds of deopt -> optimized re-entry at the same site: the
    // 2nd and 3rd opens each follow a close-by-reentry (2 flip-flops),
    // and the 3rd episode trips the storm threshold (default 3).
    for (int round = 0; round < 3; round++) {
        t.onFrameEnter(4, true, interp, total);
        t.onDeopt(fn, DeoptReason::WrongMap, DeoptCategory::Eager, 9,
                  SrcPos{11, 1}, interp, total + 10);
        t.onBailoutAccounted(interp, total + 610);
        interp += 40;
        total += 700;
        t.onFrameLeave(interp, total);
        t.onFrameEnter(4, true, interp, total);    // closes by re-entry
        total += 50;
        t.onFrameLeave(interp, total);
    }

    EXPECT_EQ(t.episodes().size(), 3u);
    EXPECT_EQ(t.flipFlopEvents(), 2u);
    EXPECT_EQ(t.stormSiteCount(), 1u);
    EXPECT_TRUE(t.isStormSite(t.episodes()[0].site));
    EXPECT_EQ(phaseSum(t), t.attributedCycles());
}

TEST(EpisodeTracker, OutermostOwnerCountsReplayOnce)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(5);

    // Episode open for f5, which then recurses in the interpreter:
    // only the outermost interpreter frame owns the replay clock, so
    // the nested frame's cycles are not double counted.
    t.onDeopt(fn, DeoptReason::Overflow, DeoptCategory::Eager, 0,
              SrcPos{11, 1}, 0, 100);
    t.onFrameEnter(5, false, /*interp=*/0, 700);    // owner
    t.onFrameEnter(5, false, 30, 730);              // nested, not owner
    t.onFrameLeave(80, 780);
    t.onFrameLeave(100, 800);                       // replay = 100 - 0
    t.finish(100, 800);

    ASSERT_EQ(t.episodes().size(), 1u);
    EXPECT_EQ(t.episodes()[0].phases.replay, 100u);
    EXPECT_EQ(phaseSum(t), t.attributedCycles());
}

TEST(EpisodeTracker, RecompileWhileOpenAttributesToEpisode)
{
    EpisodeTracker t;
    t.enable(nullptr);
    FunctionInfo fn = makeFn(6);

    t.onDeopt(fn, DeoptReason::Overflow, DeoptCategory::Eager, 0,
              SrcPos{11, 1}, 0, 100);
    t.onCompile(6, 1000, 1025);        // open episode: counted
    t.onCompile(7, 2000, 2010);        // unrelated function: ignored
    t.finish(0, 3000);
    t.onCompile(6, 3000, 3100);        // episode closed: ignored

    ASSERT_EQ(t.episodes().size(), 1u);
    EXPECT_EQ(t.episodes()[0].recompiles, 1u);
    EXPECT_EQ(t.episodes()[0].phases.recompile, 25u);
    EXPECT_EQ(t.attributedCycles(), 25);
}

TEST(SnapshotFeedback, ClassifiesSlotStates)
{
    FeedbackVector fv;
    int smi = fv.addSlot(SlotKind::BinaryOp);
    fv.at(smi).operands = OperandFeedback::Smi;
    int num = fv.addSlot(SlotKind::CompareOp);
    fv.at(num).operands = OperandFeedback::Number;
    int any = fv.addSlot(SlotKind::UnaryOp);
    fv.at(any).operands = OperandFeedback::Any;
    int mono = fv.addSlot(SlotKind::Property);
    fv.at(mono).property.state = PropertyFeedback::State::Monomorphic;
    int poly = fv.addSlot(SlotKind::Property);
    fv.at(poly).property.state = PropertyFeedback::State::Polymorphic;
    int mega = fv.addSlot(SlotKind::Property);
    fv.at(mega).property.state = PropertyFeedback::State::Megamorphic;
    fv.at(mega).property.sawGeneric = true;
    int elem = fv.addSlot(SlotKind::Element);
    fv.at(elem).element.state = ElementFeedback::State::Typed;
    int call = fv.addSlot(SlotKind::CallSite);
    fv.at(call).call.state = CallFeedback::State::Megamorphic;
    fv.addSlot(SlotKind::Global);

    FeedbackSnapshot s = snapshotFeedback(fv);
    EXPECT_EQ(s.slots, 9u);
    EXPECT_EQ(s.smiOps, 1u);
    EXPECT_EQ(s.numberOps, 1u);
    EXPECT_EQ(s.anyOps, 1u);
    EXPECT_EQ(s.monomorphic, 2u);   // property mono + typed element
    EXPECT_EQ(s.polymorphic, 1u);
    EXPECT_EQ(s.megamorphic, 2u);   // property mega + megamorphic call
    EXPECT_EQ(s.genericSites, 1u);
}

// ---------------------------------------------------------------------
// Engine integration: reconciliation and cycle-neutrality
// ---------------------------------------------------------------------

TEST(DeoptCostEngine, EpisodesReconcileWithDeoptLogAndCounters)
{
    EngineConfig cfg;
    cfg.samplerEnabled = false;
    cfg.deoptCost = true;
    cfg.trace.categories = traceCategoryBit(TraceCategory::Deopt);
    Engine engine(cfg);
    engine.loadProgram(kOverflowProgram);
    for (int i = 0; i < 10; i++)
        engine.call("bench");
    engine.episodes.finish(engine.interpreterCycles, engine.totalCycles());

    // 1:1 with the deopt log, and at least the overflow deopt fired.
    ASSERT_GE(engine.deoptLog.size(), 1u);
    EXPECT_EQ(engine.episodes.episodes().size(), engine.deoptLog.size());
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptEpisodes),
              engine.deoptLog.size());

    // The oracle invariant: per-episode phases sum exactly to the
    // tracker's independent accumulator...
    i64 sum = 0;
    u64 bailout = 0, replay = 0, recompile = 0;
    for (const DeoptEpisode &ep : engine.episodes.episodes()) {
        EXPECT_TRUE(ep.closed);
        sum += ep.phases.total();
        bailout += ep.phases.bailout;
        replay += ep.phases.replay;
        recompile += ep.phases.recompile;
    }
    EXPECT_EQ(sum, engine.episodes.attributedCycles());
    // ...and the phase totals match the trace counters cycle for cycle.
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptBailoutCycles),
              bailout);
    EXPECT_EQ(engine.trace.counters.get(TraceCounter::DeoptReplayCycles),
              replay);
    EXPECT_EQ(
        engine.trace.counters.get(TraceCounter::DeoptRecompileCycles),
        recompile);

    // Satellite: every deopt record carries its source position now.
    for (const DeoptRecord &d : engine.deoptLog)
        EXPECT_GT(d.pos.line, 0) << deoptReasonName(d.reason);

    // Episodes appear as async spans in the chrome trace, id-paired.
    std::string json = engine.trace.chromeTraceJson();
    std::string err;
    EXPECT_TRUE(jsonIsValid(json, &err)) << err;
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(DeoptCostEngine, TrackingIsCycleNeutral)
{
    auto run = [](bool track) {
        EngineConfig cfg;
        cfg.samplerEnabled = false;
        cfg.deoptCost = track;
        Engine engine(cfg);
        engine.loadProgram(kOverflowProgram);
        for (int i = 0; i < 10; i++)
            engine.call("bench");
        return std::tuple<u64, u64, size_t, u64, std::string>{
            engine.totalCycles(), engine.interpreterCycles,
            engine.deoptLog.size(), engine.compilations,
            engine.vm.display(engine.call("verify"))};
    };
    auto off = run(false);
    auto on = run(true);
    EXPECT_EQ(std::get<0>(on), std::get<0>(off)) << "totalCycles";
    EXPECT_EQ(std::get<1>(on), std::get<1>(off)) << "interpreterCycles";
    EXPECT_EQ(std::get<2>(on), std::get<2>(off)) << "deoptLog";
    EXPECT_EQ(std::get<3>(on), std::get<3>(off)) << "compilations";
    EXPECT_EQ(std::get<4>(on), std::get<4>(off)) << "checksum";
}

// ---------------------------------------------------------------------
// Summary + export round-trip
// ---------------------------------------------------------------------

TEST(DeoptCostExport, SummaryJsonRoundTripsAndDiffs)
{
    EngineConfig cfg;
    cfg.samplerEnabled = false;
    cfg.deoptCost = true;
    Engine engine(cfg);
    engine.loadProgram(kOverflowProgram);
    for (int i = 0; i < 10; i++)
        engine.call("bench");
    engine.episodes.finish(engine.interpreterCycles, engine.totalCycles());

    DeoptCostSummary s = summarizeEpisodes(
        engine.episodes, [](FunctionId) { return std::string("bench"); },
        engine.totalCycles());
    ASSERT_GE(s.episodes, 1u);
    EXPECT_EQ(s.episodes, engine.deoptLog.size());
    EXPECT_EQ(static_cast<i64>(s.bailoutCycles + s.replayCycles
                               + s.recompileCycles)
                  + s.residualCycles,
              s.attributedCycles);
    ASSERT_FALSE(s.sites.empty());
    EXPECT_EQ(s.sites[0].function, "bench");
    EXPECT_GT(s.sites[0].line, 0);
    EXPECT_GT(s.recoverableFraction(), 0.0);
    EXPECT_LT(s.recoverableFraction(), 1.0);

    // vspec-deopt-v1 parses back with every top-level key present.
    std::string json = deoptCostJson(s, "OVERFLOW", "arm64");
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, err)) << err;
    EXPECT_EQ(doc.get("schema")->string, "vspec-deopt-v1");
    for (const char *key :
         {"workload", "isa", "total_cycles", "attributed_cycles",
          "recoverable_fraction", "episodes", "phases", "groups", "sites"})
        EXPECT_NE(doc.get(key), nullptr) << key;
    EXPECT_EQ(doc.get("sites")->array.size(), s.sites.size());

    // Human report names the top site; self-diff aligns every site and
    // reports a zero cost delta.
    std::string report = deoptCostReport(s, 10);
    EXPECT_NE(report.find("bench:"), std::string::npos);
    std::string diff = deoptCostDiffReport(doc, doc, err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_NE(diff.find("+0"), std::string::npos);
    // Row markers are end-of-line; "eps (new)" in the column header
    // is not one.
    EXPECT_EQ(diff.find("(new)\n"), std::string::npos);
    EXPECT_EQ(diff.find("(gone)\n"), std::string::npos);

    // Malformed input is rejected, not mis-parsed.
    JsonValue junk;
    ASSERT_TRUE(parseJson("{\"schema\":\"other\"}", junk, err)) << err;
    std::string bad_err;
    deoptCostDiffReport(junk, doc, bad_err);
    EXPECT_FALSE(bad_err.empty());
}
