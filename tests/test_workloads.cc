/** @file Workload-suite integrity and differential validation. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace vspec;

TEST(Workloads, SuiteShape)
{
    const auto &s = suite();
    EXPECT_GE(s.size(), 30u);
    // Every category of the paper is represented.
    std::set<Category> cats;
    for (const auto &w : s)
        cats.insert(w.category);
    EXPECT_EQ(cats.size(), 7u);
    // Names and tags are unique.
    std::set<std::string> names, tags;
    for (const auto &w : s) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_TRUE(tags.insert(w.tag).second) << w.tag;
        EXPECT_GT(w.defaultSize, 0u);
        EXPECT_NE(w.source.find("function bench()"), std::string::npos)
            << w.name;
        EXPECT_NE(w.source.find("function verify()"), std::string::npos)
            << w.name;
    }
}

TEST(Workloads, Gem5SubsetMatchesPaper)
{
    auto subset = gem5Subset();
    EXPECT_GE(subset.size(), 7u);
    std::set<std::string> names;
    for (const auto *w : subset)
        names.insert(w->name);
    // §V: SPMV, MMUL, IM2COL, SPMM, BLUR, AES2, HASH (+ DP).
    for (const char *n : {"SPMV-CSR-SMI", "MMUL", "IM2COL", "SPMM",
                          "BLUR", "AES2", "HASH-FNV", "DP"})
        EXPECT_TRUE(names.count(n)) << n;
}

TEST(Workloads, InstantiateSubstitutesSize)
{
    const Workload *w = findWorkload("DP");
    ASSERT_NE(w, nullptr);
    std::string src = instantiate(*w, 77);
    EXPECT_EQ(src.find("%SIZE%"), std::string::npos);
    EXPECT_NE(src.find("77"), std::string::npos);
}

TEST(Workloads, FindByNameAndTag)
{
    EXPECT_NE(findWorkload("SPMV-CSR-SMI"), nullptr);
    EXPECT_NE(findWorkload("SPS"), nullptr);
    EXPECT_EQ(findWorkload("NOPE"), nullptr);
}

/** Differential: every workload agrees between interpreter and JIT at
 *  a reduced size (a full-suite sweep lives in the suite_runner). */
class WorkloadDifferential
    : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(WorkloadDifferential, InterpAndJitAgree)
{
    const Workload &w = *GetParam();
    u32 size = std::max(4u, w.defaultSize / 8);
    constexpr u32 kIters = 8;

    RunConfig jit;
    jit.iterations = kIters;
    jit.size = size;
    jit.samplerEnabled = false;
    RunOutcome a = runWorkload(w, jit, nullptr);

    RunConfig interp;
    interp.iterations = kIters;
    interp.size = size;
    interp.samplerEnabled = false;
    interp.enableOptimization = false;
    RunOutcome b = runWorkload(w, interp, nullptr);

    ASSERT_TRUE(a.completed) << a.error;
    ASSERT_TRUE(b.completed) << b.error;
    EXPECT_EQ(a.checksum, b.checksum);
}

namespace
{

std::vector<const Workload *>
allWorkloads()
{
    std::vector<const Workload *> out;
    for (const auto &w : suite())
        out.push_back(&w);
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadDifferential, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        std::string n = info.param->name;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });
