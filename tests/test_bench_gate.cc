/** @file Bench regression gate tests: manifest parsing, tolerance
 *  comparison semantics, and the directory-level runBenchGate driver. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/bench_gate.hh"

using namespace vspec;
namespace fs = std::filesystem;

namespace
{

JsonValue
parse(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, error)) << error;
    return doc;
}

GateEntry
basicEntry()
{
    GateEntry e;
    e.file = "c.json";
    e.defaultTolerance = 0.05;
    return e;
}

/** Scratch directory pair (base/, cur/) for runBenchGate tests. */
struct GateDirs
{
    fs::path root, base, cur;

    explicit GateDirs(const std::string &name)
    {
        root = fs::temp_directory_path() / ("vspec-gate-" + name);
        fs::remove_all(root);
        base = root / "base";
        cur = root / "cur";
        fs::create_directories(base);
        fs::create_directories(cur);
    }

    ~GateDirs() { fs::remove_all(root); }

    void write(const fs::path &dir, const std::string &file,
               const std::string &text) const
    {
        std::ofstream out(dir / file, std::ios::trunc);
        out << text;
    }
};

const char *kManifest =
    R"({"schema": "vspec-bench-gate-v1",
        "entries": [{"file": "c.json",
                     "default_tolerance": 0.05,
                     "tolerances": {},
                     "required_keys": ["schema"],
                     "informational": false}]})";

} // namespace

TEST(BenchGate, ManifestParsesEntriesAndTolerances)
{
    JsonValue doc = parse(
        R"({"schema": "vspec-bench-gate-v1",
            "entries": [
              {"file": "a.json", "default_tolerance": 0.10,
               "tolerances": {"w.x.cycles": 0.20},
               "required_keys": ["schema"], "informational": false},
              {"file": "b.json", "default_tolerance": null,
               "informational": true}]})");
    std::vector<GateEntry> entries;
    std::string error;
    ASSERT_TRUE(parseGateManifest(doc, entries, error)) << error;
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].file, "a.json");
    EXPECT_DOUBLE_EQ(entries[0].defaultTolerance, 0.10);
    EXPECT_DOUBLE_EQ(entries[0].tolerances.at("w.x.cycles"), 0.20);
    ASSERT_EQ(entries[0].requiredKeys.size(), 1u);
    EXPECT_FALSE(entries[0].informational);
    EXPECT_TRUE(entries[1].informational
                || entries[1].defaultTolerance < 0.0);
}

TEST(BenchGate, ManifestRejectsWrongSchema)
{
    JsonValue doc = parse(R"({"schema": "other", "entries": []})");
    std::vector<GateEntry> entries;
    std::string error;
    EXPECT_FALSE(parseGateManifest(doc, entries, error));
    EXPECT_FALSE(error.empty());
}

TEST(BenchGate, IdenticalDocumentsPass)
{
    JsonValue doc = parse(
        R"({"schema": "s", "workloads": {"r": {"cycles": 1000}}})");
    GateOutcome outcome;
    compareGateEntry(basicEntry(), doc, doc, outcome);
    EXPECT_TRUE(outcome.passed);
    EXPECT_TRUE(outcome.violations.empty());
    EXPECT_GT(outcome.keysCompared, 0u);
}

TEST(BenchGate, SmallDriftPassesLargeDriftFails)
{
    JsonValue base = parse(R"({"cycles": 1000})");
    // 4% drift is inside the 5% tolerance.
    GateOutcome ok;
    compareGateEntry(basicEntry(), base, parse(R"({"cycles": 1040})"),
                     ok);
    EXPECT_TRUE(ok.passed);

    // 30% drift trips the gate, in either direction.
    GateOutcome slow;
    compareGateEntry(basicEntry(), base, parse(R"({"cycles": 1300})"),
                     slow);
    EXPECT_FALSE(slow.passed);
    ASSERT_EQ(slow.violations.size(), 1u);
    EXPECT_EQ(slow.violations[0].key, "cycles");
    EXPECT_DOUBLE_EQ(slow.violations[0].baseline, 1000.0);
    EXPECT_DOUBLE_EQ(slow.violations[0].current, 1300.0);

    GateOutcome fast;
    compareGateEntry(basicEntry(), base, parse(R"({"cycles": 700})"),
                     fast);
    EXPECT_FALSE(fast.passed);
}

TEST(BenchGate, PerKeyToleranceOverridesDefault)
{
    GateEntry e = basicEntry();
    e.tolerances["w.r.cycles"] = 0.50;  // loose for this one key
    JsonValue base = parse(
        R"({"w": {"r": {"cycles": 1000, "deopts": 10}}})");
    JsonValue cur = parse(
        R"({"w": {"r": {"cycles": 1300, "deopts": 10}}})");
    GateOutcome outcome;
    compareGateEntry(e, base, cur, outcome);
    EXPECT_TRUE(outcome.passed) << gateReport(outcome);

    // The same drift on a key without the override still fails.
    JsonValue cur2 = parse(
        R"({"w": {"r": {"cycles": 1000, "deopts": 13}}})");
    GateOutcome outcome2;
    compareGateEntry(e, base, cur2, outcome2);
    EXPECT_FALSE(outcome2.passed);
}

TEST(BenchGate, ExactToleranceGuardsIntegerKeys)
{
    GateEntry e = basicEntry();
    e.tolerances["iterations"] = 0.0;
    JsonValue base = parse(R"({"iterations": 10})");
    GateOutcome same;
    compareGateEntry(e, base, parse(R"({"iterations": 10})"), same);
    EXPECT_TRUE(same.passed);
    GateOutcome diff;
    compareGateEntry(e, base, parse(R"({"iterations": 11})"), diff);
    EXPECT_FALSE(diff.passed);
}

TEST(BenchGate, ScaleMultipliesTolerances)
{
    JsonValue base = parse(R"({"cycles": 1000})");
    JsonValue cur = parse(R"({"cycles": 1080})");  // 8% drift
    GateOutcome strict;
    compareGateEntry(basicEntry(), base, cur, strict, 1.0);
    EXPECT_FALSE(strict.passed);
    GateOutcome loose;
    compareGateEntry(basicEntry(), base, cur, loose, 2.0);  // tol -> 10%
    EXPECT_TRUE(loose.passed);
}

TEST(BenchGate, MissingRequiredKeyIsViolationOthersAreNotes)
{
    GateEntry e = basicEntry();
    e.requiredKeys = {"schema"};
    JsonValue base = parse(R"({"schema": "s", "extra": 5})");

    // Optional key missing: reported as a note, gate still passes.
    GateOutcome note;
    compareGateEntry(e, base, parse(R"({"schema": "s"})"), note);
    EXPECT_TRUE(note.passed);
    EXPECT_FALSE(note.notes.empty());

    // Required key missing: violation.
    GateOutcome bad;
    compareGateEntry(e, base, parse(R"({"extra": 5})"), bad);
    EXPECT_FALSE(bad.passed);
}

TEST(BenchGate, TypeMismatchOnNumericBaselineFails)
{
    JsonValue base = parse(R"({"cycles": 1000})");
    JsonValue cur = parse(R"({"cycles": "fast"})");
    GateOutcome outcome;
    compareGateEntry(basicEntry(), base, cur, outcome);
    EXPECT_FALSE(outcome.passed);
}

TEST(BenchGate, InformationalEntryNeverFails)
{
    GateEntry e = basicEntry();
    e.informational = true;
    JsonValue base = parse(R"({"throughput": 100.0})");
    JsonValue cur = parse(R"({"throughput": 5.0})");  // huge deviation
    GateOutcome outcome;
    compareGateEntry(e, base, cur, outcome);
    EXPECT_TRUE(outcome.passed);
    EXPECT_FALSE(outcome.notes.empty());  // ... but it is reported
}

TEST(BenchGate, ArraysCompareElementwise)
{
    JsonValue base = parse(R"({"hist": [10, 20, 30]})");
    GateOutcome same;
    compareGateEntry(basicEntry(), base, parse(R"({"hist": [10, 20, 30]})"),
                     same);
    EXPECT_TRUE(same.passed);
    GateOutcome diff;
    compareGateEntry(basicEntry(), base, parse(R"({"hist": [10, 90, 30]})"),
                     diff);
    EXPECT_FALSE(diff.passed);
    ASSERT_FALSE(diff.violations.empty());
    EXPECT_NE(diff.violations[0].key.find("hist"), std::string::npos);
}

TEST(BenchGate, RunBenchGateComparesDirectories)
{
    GateDirs dirs("run");
    dirs.write(dirs.base, "gate.json", kManifest);
    dirs.write(dirs.base, "c.json",
               R"({"schema": "s", "cycles": 1000})");
    dirs.write(dirs.cur, "c.json",
               R"({"schema": "s", "cycles": 1010})");
    GateOutcome outcome = runBenchGate(dirs.base.string(),
                                       dirs.cur.string());
    EXPECT_TRUE(outcome.passed) << gateReport(outcome);

    // Now inject a 25% regression and expect a failure.
    dirs.write(dirs.cur, "c.json",
               R"({"schema": "s", "cycles": 1250})");
    GateOutcome regressed = runBenchGate(dirs.base.string(),
                                         dirs.cur.string());
    EXPECT_FALSE(regressed.passed);
    std::string report = gateReport(regressed);
    EXPECT_NE(report.find("FAIL"), std::string::npos);
    EXPECT_NE(report.find("cycles"), std::string::npos);
}

TEST(BenchGate, RunBenchGateMissingCurrentFileFails)
{
    GateDirs dirs("missing");
    dirs.write(dirs.base, "gate.json", kManifest);
    dirs.write(dirs.base, "c.json", R"({"schema": "s", "cycles": 1})");
    GateOutcome outcome = runBenchGate(dirs.base.string(),
                                       dirs.cur.string());
    EXPECT_FALSE(outcome.passed);
}

TEST(BenchGate, RunBenchGateInvalidCurrentJsonFails)
{
    GateDirs dirs("badjson");
    dirs.write(dirs.base, "gate.json", kManifest);
    dirs.write(dirs.base, "c.json", R"({"schema": "s", "cycles": 1})");
    dirs.write(dirs.cur, "c.json", "{not json");
    GateOutcome outcome = runBenchGate(dirs.base.string(),
                                       dirs.cur.string());
    EXPECT_FALSE(outcome.passed);
}

TEST(BenchGate, RunBenchGateMissingManifestFails)
{
    GateDirs dirs("nomanifest");
    GateOutcome outcome = runBenchGate(dirs.base.string(),
                                       dirs.cur.string());
    EXPECT_FALSE(outcome.passed);
}

TEST(BenchGate, CommittedBaselinesHaveValidManifest)
{
    // The repo's own baselines directory must always parse; CI depends
    // on it.
    fs::path dir = fs::path(VSPEC_TEST_SRC_DIR) / ".." / "bench"
                   / "baselines";
    std::ifstream in(dir / "gate.json");
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue doc = parse(ss.str());
    std::vector<GateEntry> entries;
    std::string error;
    ASSERT_TRUE(parseGateManifest(doc, entries, error)) << error;
    EXPECT_GE(entries.size(), 1u);

    // A self-compare of the committed baselines must pass the gate.
    GateOutcome outcome = runBenchGate(dir.string(), dir.string());
    EXPECT_TRUE(outcome.passed) << gateReport(outcome);
}
