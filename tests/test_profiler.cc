/** @file PC sampler and check-attribution tests (§III-A methodology). */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "profiler/attribution.hh"
#include "profiler/sampler.hh"
#include "runtime/engine.hh"

using namespace vspec;

namespace
{

CodeObject
makeToyCode()
{
    // [0] alu, [1] cond (check 0), [2] deopt branch (check 0),
    // [3] alu, [4] deopt exit
    CodeObject code;
    code.checks.push_back({0, DeoptReason::NotASmi, CheckGroup::NotASmi});
    MInst alu;
    alu.op = MOp::Add;
    MInst cond;
    cond.op = MOp::TstI;
    cond.checkId = 0;
    cond.checkRole = CheckRole::Condition;
    MInst br;
    br.op = MOp::Bcond;
    br.checkId = 0;
    br.checkRole = CheckRole::Branch;
    br.isDeoptBranch = true;
    br.target = 4;
    MInst exit;
    exit.op = MOp::DeoptExit;
    code.code = {alu, cond, br, alu, exit};
    return code;
}

} // namespace

TEST(Profiler, SamplerHonorsPeriod)
{
    PcSampler sampler;
    sampler.period = 100;
    sampler.nextAt = 100;
    CodeObject code = makeToyCode();
    code.id = 1;
    // Tick at increasing cycles; one sample per period boundary.
    for (Cycles c = 0; c <= 1000; c += 50)
        sampler.tick(c, code, static_cast<u32>(c / 50 % 5));
    EXPECT_EQ(sampler.totalSamples, 10u);
    EXPECT_NE(sampler.histogramFor(1), nullptr);
}

TEST(Profiler, WindowHeuristicAttributesBranchAndWindow)
{
    CodeObject code = makeToyCode();
    // Samples: 10 on the alu, 20 on the condition, 5 on the branch.
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto r = attributeWindowHeuristic(code, hist, 1);
    EXPECT_EQ(r.totalSamples, 42u);
    // window=1 captures the condition (pc 1) and the branch (pc 2).
    EXPECT_EQ(r.checkSamples, 25u);
    EXPECT_EQ(r.samplesPerGroup[static_cast<size_t>(CheckGroup::NotASmi)],
              25u);
}

TEST(Profiler, WiderWindowOverattributes)
{
    CodeObject code = makeToyCode();
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto w2 = attributeWindowHeuristic(code, hist, 2);
    // window=2 also swallows the unrelated alu at pc 0.
    EXPECT_EQ(w2.checkSamples, 35u);
}

TEST(Profiler, GroundTruthUsesAnnotations)
{
    CodeObject code = makeToyCode();
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto gt = attributeGroundTruth(code, hist);
    EXPECT_EQ(gt.checkSamples, 25u);  // cond + branch only
    EXPECT_DOUBLE_EQ(gt.overheadFraction(), 25.0 / 42.0);
}

TEST(Profiler, DefaultWindowsMatchThePaper)
{
    EXPECT_EQ(defaultWindowFor(IsaFlavour::X64Like), 1);
    EXPECT_EQ(defaultWindowFor(IsaFlavour::Arm64Like), 2);
}

TEST(Profiler, WindowDoesNotCrossControlFlow)
{
    // A branch immediately before a check's branch stops the window.
    CodeObject code = makeToyCode();
    code.code[1].op = MOp::B;          // unrelated jump
    code.code[1].checkId = kNoCheck;
    code.code[1].checkRole = CheckRole::None;
    std::vector<u64> hist = {10, 20, 5, 0, 0};
    auto r = attributeWindowHeuristic(code, hist, 2);
    EXPECT_EQ(r.checkSamples, 5u);  // only the deopt branch itself
}

TEST(Profiler, EndToEndSamplingFindsChecks)
{
    EngineConfig cfg;
    cfg.samplerEnabled = true;
    cfg.samplerPeriodCycles = 53;
    Engine engine(cfg);
    engine.loadProgram(R"JS(
var a = [];
function setup() { for (var i = 0; i < 64; i++) { a.push(i % 9); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 64; i++) { s = (s + a[i]) % 4096; }
    return s;
}
)JS");
    for (int i = 0; i < 50; i++)
        engine.call("bench");
    ASSERT_GT(engine.sampler.totalSamples, 100u);

    AttributionResult window, truth;
    for (const auto &code : engine.codeObjects) {
        const auto *hist = engine.sampler.histogramFor(code->id);
        if (hist == nullptr)
            continue;
        window += attributeWindowHeuristic(*code, *hist, 2);
        truth += attributeGroundTruth(*code, *hist);
    }
    // Both attributions see a real, nonzero check overhead, and they
    // agree within a factor of two (§IV's correlation claim).
    EXPECT_GT(truth.overheadFraction(), 0.02);
    EXPECT_GT(window.overheadFraction(), 0.02);
    double ratio = window.overheadFraction() / truth.overheadFraction();
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Profiler, SkipToConsumesPeriodsWithoutSamples)
{
    PcSampler sampler;
    sampler.period = 100;
    sampler.nextAt = 100;
    CodeObject code = makeToyCode();
    code.id = 9;
    sampler.tick(150, code, 0);   // 1 sample (at 100)
    sampler.skipTo(1000);         // periods 200..1000 consumed silently
    sampler.tick(1050, code, 1);  // next sample not before 1100
    EXPECT_EQ(sampler.totalSamples, 1u);
    sampler.tick(1100, code, 1);
    EXPECT_EQ(sampler.totalSamples, 2u);
}

TEST(Profiler, BuiltinTimeIsNotAttributedToChecks)
{
    // A regex workload spends nearly all time in the irregexp-lite
    // builtin; with whole-process accounting its check overhead must
    // be tiny (the paper's observation for regex benchmarks).
    const Workload *w = findWorkload("REGEX-LOG");
    ASSERT_NE(w, nullptr);
    RunConfig rc;
    rc.iterations = 12;
    RunOutcome out = runWorkload(*w, rc, nullptr);
    ASSERT_TRUE(out.completed);
    EXPECT_LT(out.window.overheadFraction(), 0.10);
}
