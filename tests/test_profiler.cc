/** @file PC sampler, check-attribution, and vprof calling-context
 *  profiler tests (§III-A methodology + source-line attribution). */

#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.hh"
#include "profiler/attribution.hh"
#include "profiler/profile.hh"
#include "profiler/sampler.hh"
#include "runtime/engine.hh"

using namespace vspec;

namespace
{

CodeObject
makeToyCode()
{
    // [0] alu, [1] cond (check 0), [2] deopt branch (check 0),
    // [3] alu, [4] deopt exit
    CodeObject code;
    code.checks.push_back({0, DeoptReason::NotASmi, CheckGroup::NotASmi});
    MInst alu;
    alu.op = MOp::Add;
    MInst cond;
    cond.op = MOp::TstI;
    cond.checkId = 0;
    cond.checkRole = CheckRole::Condition;
    MInst br;
    br.op = MOp::Bcond;
    br.checkId = 0;
    br.checkRole = CheckRole::Branch;
    br.isDeoptBranch = true;
    br.target = 4;
    MInst exit;
    exit.op = MOp::DeoptExit;
    code.code = {alu, cond, br, alu, exit};
    return code;
}

} // namespace

TEST(Profiler, SamplerHonorsPeriod)
{
    PcSampler sampler;
    sampler.setPeriod(100);
    CodeObject code = makeToyCode();
    code.id = 1;
    // Tick at increasing cycles; one sample per period boundary.
    for (Cycles c = 0; c <= 1000; c += 50)
        sampler.tick(c, code, static_cast<u32>(c / 50 % 5));
    EXPECT_EQ(sampler.totalSamples, 10u);
    EXPECT_NE(sampler.histogramFor(1), nullptr);
}

TEST(Profiler, WindowHeuristicAttributesBranchAndWindow)
{
    CodeObject code = makeToyCode();
    // Samples: 10 on the alu, 20 on the condition, 5 on the branch.
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto r = attributeWindowHeuristic(code, hist, 1);
    EXPECT_EQ(r.totalSamples, 42u);
    // window=1 captures the condition (pc 1) and the branch (pc 2).
    EXPECT_EQ(r.checkSamples, 25u);
    EXPECT_EQ(r.samplesPerGroup[static_cast<size_t>(CheckGroup::NotASmi)],
              25u);
}

TEST(Profiler, WiderWindowOverattributes)
{
    CodeObject code = makeToyCode();
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto w2 = attributeWindowHeuristic(code, hist, 2);
    // window=2 also swallows the unrelated alu at pc 0.
    EXPECT_EQ(w2.checkSamples, 35u);
}

TEST(Profiler, GroundTruthUsesAnnotations)
{
    CodeObject code = makeToyCode();
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    auto gt = attributeGroundTruth(code, hist);
    EXPECT_EQ(gt.checkSamples, 25u);  // cond + branch only
    EXPECT_DOUBLE_EQ(gt.overheadFraction(), 25.0 / 42.0);
}

TEST(Profiler, DefaultWindowsMatchThePaper)
{
    EXPECT_EQ(defaultWindowFor(IsaFlavour::X64Like), 1);
    EXPECT_EQ(defaultWindowFor(IsaFlavour::Arm64Like), 2);
}

TEST(Profiler, WindowDoesNotCrossControlFlow)
{
    // A branch immediately before a check's branch stops the window.
    CodeObject code = makeToyCode();
    code.code[1].op = MOp::B;          // unrelated jump
    code.code[1].checkId = kNoCheck;
    code.code[1].checkRole = CheckRole::None;
    std::vector<u64> hist = {10, 20, 5, 0, 0};
    auto r = attributeWindowHeuristic(code, hist, 2);
    EXPECT_EQ(r.checkSamples, 5u);  // only the deopt branch itself
}

TEST(Profiler, EndToEndSamplingFindsChecks)
{
    EngineConfig cfg;
    cfg.samplerEnabled = true;
    cfg.samplerPeriodCycles = 53;
    Engine engine(cfg);
    engine.loadProgram(R"JS(
var a = [];
function setup() { for (var i = 0; i < 64; i++) { a.push(i % 9); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 64; i++) { s = (s + a[i]) % 4096; }
    return s;
}
)JS");
    for (int i = 0; i < 50; i++)
        engine.call("bench");
    ASSERT_GT(engine.sampler.totalSamples, 100u);

    AttributionResult window, truth;
    for (const auto &code : engine.codeObjects) {
        const auto *hist = engine.sampler.histogramFor(code->id);
        if (hist == nullptr)
            continue;
        window += attributeWindowHeuristic(*code, *hist, 2);
        truth += attributeGroundTruth(*code, *hist);
    }
    // Both attributions see a real, nonzero check overhead, and they
    // agree within a factor of two (§IV's correlation claim).
    EXPECT_GT(truth.overheadFraction(), 0.02);
    EXPECT_GT(window.overheadFraction(), 0.02);
    double ratio = window.overheadFraction() / truth.overheadFraction();
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Profiler, SkipToConsumesPeriodsWithoutSamples)
{
    PcSampler sampler;
    sampler.setPeriod(100);
    CodeObject code = makeToyCode();
    code.id = 9;
    sampler.tick(150, code, 0);   // 1 sample (at 100)
    sampler.skipTo(1000);         // periods 200..1000 consumed silently
    sampler.tick(1050, code, 1);  // next sample not before 1100
    EXPECT_EQ(sampler.totalSamples, 1u);
    sampler.tick(1100, code, 1);
    EXPECT_EQ(sampler.totalSamples, 2u);
}

TEST(Profiler, BuiltinTimeIsNotAttributedToChecks)
{
    // A regex workload spends nearly all time in the irregexp-lite
    // builtin; with whole-process accounting its check overhead must
    // be tiny (the paper's observation for regex benchmarks).
    const Workload *w = findWorkload("REGEX-LOG");
    ASSERT_NE(w, nullptr);
    RunConfig rc;
    rc.iterations = 12;
    RunOutcome out = runWorkload(*w, rc, nullptr);
    ASSERT_TRUE(out.completed);
    EXPECT_LT(out.window.overheadFraction(), 0.10);
}

// ---------------------------------------------------------------------
// vprof: sampler hardening, metadata snapshots, and the CCT
// ---------------------------------------------------------------------

TEST(Profiler, SetPeriodReArmsAndResetHonorsPeriod)
{
    PcSampler sampler;  // constructed with the default period (997)
    sampler.setPeriod(10);
    CodeObject code = makeToyCode();
    code.id = 2;
    // With the old stale-nextAt behavior this tick would not sample
    // (nextAt would still sit at 997).
    sampler.tick(10, code, 0);
    EXPECT_EQ(sampler.totalSamples, 1u);
    EXPECT_EQ(sampler.period(), 10u);

    sampler.reset();
    EXPECT_EQ(sampler.totalSamples, 0u);
    EXPECT_EQ(sampler.histogramFor(2), nullptr);
    // reset() must honor the configured period, not the default.
    sampler.tick(10, code, 0);
    EXPECT_EQ(sampler.totalSamples, 1u);
}

TEST(Profiler, MetaSnapshotSurvivesCodeDiscard)
{
    PcSampler sampler;
    sampler.setPeriod(10);
    {
        CodeObject code = makeToyCode();
        code.id = 7;
        code.functionName = "toy";
        sampler.tick(10, code, 1);  // pc 1 = condition of check 0
    }  // the code object is gone; only the snapshot remains
    const CodeObjectMeta *meta = sampler.metaFor(7);
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->functionName, "toy");
    ASSERT_EQ(meta->insts.size(), 5u);
    const auto *hist = sampler.histogramFor(7);
    ASSERT_NE(hist, nullptr);
    auto gt = attributeGroundTruth(*meta, *hist);
    EXPECT_EQ(gt.checkSamples, 1u);
    EXPECT_EQ(
        gt.samplesPerGroup[static_cast<size_t>(CheckGroup::NotASmi)],
        1u);
}

TEST(Profiler, MetaAttributionMatchesLiveCodeAttribution)
{
    CodeObject code = makeToyCode();
    std::vector<u64> hist = {10, 20, 5, 7, 0};
    CodeObjectMeta meta = CodeObjectMeta::capture(code);
    for (int w = 0; w <= 4; w++) {
        auto live = attributeWindowHeuristic(code, hist, w);
        auto snap = attributeWindowHeuristic(meta, hist, w);
        EXPECT_EQ(live.checkSamples, snap.checkSamples);
        EXPECT_EQ(live.totalSamples, snap.totalSamples);
        EXPECT_EQ(live.samplesPerGroup, snap.samplesPerGroup);
    }
    auto live = attributeGroundTruth(code, hist);
    auto snap = attributeGroundTruth(meta, hist);
    EXPECT_EQ(live.samplesPerGroup, snap.samplesPerGroup);
}

TEST(Profiler, CctNestedCallsRecursionAndRuntime)
{
    PcSampler s;
    s.setPeriod(10);
    s.enableProfile(true);
    CodeObject code = makeToyCode();
    code.id = 3;

    s.pushFrame(ProfFrameKind::Interp, 0, kNoCodeId);  // main
    s.pushFrame(ProfFrameKind::Jit, 1, 3);             // f
    s.tick(10, code, 0);                               // sample on f
    s.pushFrame(ProfFrameKind::Jit, 1, 3);             // f -> f (recursion)
    s.tick(20, code, 1);                               // on the check cond
    s.popFrame();
    s.popFrame();
    s.pushFrame(ProfFrameKind::Builtin, 2, kNoCodeId);
    s.skipTo(30);                                      // runtime period
    s.popFrame();
    s.tickInterp(10);                                  // interp clock
    s.popFrame();
    EXPECT_EQ(s.stackDepth(), 1u);

    // root + main + f + recursive f + builtin = 5 distinct contexts.
    const auto &nodes = s.nodes();
    ASSERT_EQ(nodes.size(), 5u);
    const CctNode &main_n = nodes[1];
    const CctNode &f = nodes[2];
    const CctNode &f_rec = nodes[3];
    const CctNode &blt = nodes[4];
    EXPECT_EQ(main_n.kind, ProfFrameKind::Interp);
    EXPECT_EQ(f.parent, 1u);
    EXPECT_EQ(f_rec.parent, 2u);  // recursion is a *child* of f
    EXPECT_EQ(blt.parent, 1u);
    EXPECT_EQ(f.jitSamples, 1u);
    EXPECT_EQ(f_rec.jitSamples, 1u);
    EXPECT_EQ(
        f_rec.checkSamples[static_cast<size_t>(CheckGroup::NotASmi)],
        1u);
    EXPECT_EQ(blt.runtimeSamples, 1u);
    EXPECT_EQ(main_n.interpSamples, 1u);
    EXPECT_EQ(s.interpSamples, 1u);
    EXPECT_EQ(s.runtimeSamples, 1u);
}

TEST(Profiler, CctDepthCapFoldsAndStaysSymmetric)
{
    PcSampler s;
    s.enableProfile(true);
    for (int i = 0; i < 400; i++)
        s.pushFrame(ProfFrameKind::Jit, 1, kNoCodeId);
    // Bounded: at most the cap's worth of nodes were created.
    EXPECT_LE(s.nodes().size(), 300u);
    for (int i = 0; i < 400; i++)
        s.popFrame();
    EXPECT_EQ(s.stackDepth(), 1u);
    EXPECT_EQ(s.currentNode(), 0u);
    s.popFrame();  // extra pop on the root must be a no-op
    EXPECT_EQ(s.stackDepth(), 1u);
}

TEST(Profiler, SourcePositionsRoundTripToCodeObjects)
{
    EngineConfig cfg;
    Engine engine(cfg);
    engine.loadProgram(
        "function bench() {\n"              // line 1
        "  var s = 0;\n"                    // line 2
        "  for (var i = 0; i < 32; i++) {\n"  // line 3
        "    s = s + i;\n"                  // line 4
        "  }\n"
        "  return s;\n"                     // line 6
        "}\n");
    for (int i = 0; i < 50; i++)
        engine.call("bench");
    FunctionId id = engine.functions.idOf("bench");
    ASSERT_NE(id, kInvalidFunction);
    const FunctionInfo &fn = engine.functions.at(id);
    ASSERT_TRUE(fn.hasCode());
    const CodeObject &code = *engine.codeObjects.at(fn.codeId);

    EXPECT_EQ(code.functionName, "bench");
    EXPECT_EQ(code.bcPositions.size(), fn.bytecode.size());
    std::set<i32> lines;
    for (u32 pc = 0; pc < code.code.size(); pc++)
        lines.insert(code.posForPc(pc).line);
    // The loop body (the hot path) must be represented, and no
    // instruction may map outside the function's source range.
    EXPECT_TRUE(lines.count(3) == 1 || lines.count(4) == 1);
    for (i32 l : lines)
        EXPECT_LE(l, 7);
}

TEST(Profiler, ProfilingIsCycleNeutral)
{
    const Workload *w = findWorkload("RICHARDS");
    ASSERT_NE(w, nullptr);
    RunConfig off;
    off.iterations = 8;
    RunConfig on = off;
    on.profiling = true;
    RunConfig no_sampler = off;
    no_sampler.samplerEnabled = false;

    RunOutcome a = runWorkload(*w, off);
    RunOutcome b = runWorkload(*w, on);
    RunOutcome c = runWorkload(*w, no_sampler);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    ASSERT_TRUE(c.completed);
    // Profiling must be bit-identical in simulated time: same cycles
    // per iteration, same totals, same results.
    EXPECT_EQ(a.iterationCycles, b.iterationCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.totalCycles, c.totalCycles);
    ASSERT_NE(b.profile, nullptr);
    EXPECT_GT(b.profile->totalSamples(), 0u);
}

TEST(Profiler, EndToEndCctCoversTiersAndConserves)
{
    const Workload *w = findWorkload("RICHARDS");
    ASSERT_NE(w, nullptr);
    RunConfig rc;
    rc.iterations = 12;
    rc.samplerPeriod = 53;
    rc.profiling = true;
    RunOutcome out = runWorkload(*w, rc);
    ASSERT_TRUE(out.completed);
    ASSERT_NE(out.profile, nullptr);
    const Profile &p = *out.profile;

    ASSERT_GT(p.cct.size(), 1u);
    ASSERT_EQ(p.cct.size(), p.cctNames.size());
    bool saw_jit = false, saw_interp = false;
    u64 cct_jit = 0;
    for (size_t i = 0; i < p.cct.size(); i++) {
        const CctNode &n = p.cct[i];
        if (i != 0) {
            ASSERT_LT(n.parent, p.cct.size());
        }
        if (n.kind == ProfFrameKind::Jit && n.jitSamples > 0)
            saw_jit = true;
        if (n.kind == ProfFrameKind::Interp && n.interpSamples > 0)
            saw_interp = true;
        cct_jit += n.jitSamples;
    }
    EXPECT_TRUE(saw_jit);
    EXPECT_TRUE(saw_interp);
    // Conservation: every histogram sample landed on exactly one node.
    EXPECT_EQ(cct_jit, p.jitSamples);
}

TEST(Profiler, PerLineAttributionSumsMatchFlatTotals)
{
    const Workload *w = findWorkload("RICHARDS");
    ASSERT_NE(w, nullptr);
    RunConfig rc;
    rc.iterations = 10;
    rc.profiling = true;
    RunOutcome out = runWorkload(*w, rc);
    ASSERT_TRUE(out.completed);
    ASSERT_NE(out.profile, nullptr);
    const Profile &p = *out.profile;

    std::array<u64, kNumGroups> win_sum{}, truth_sum{};
    u64 samples = 0;
    for (const ProfileLine &l : p.lines) {
        samples += l.samples;
        for (size_t g = 0; g < kNumGroups; g++) {
            win_sum[g] += l.windowPerGroup[g];
            truth_sum[g] += l.truthPerGroup[g];
        }
    }
    EXPECT_EQ(samples, p.jitSamples);
    EXPECT_EQ(win_sum, p.windowAttr.samplesPerGroup);
    EXPECT_EQ(truth_sum, p.truthAttr.samplesPerGroup);
    // The harness's flat outcome pads only totalSamples (process
    // accounting); per-group counts must agree exactly with the
    // profile's.
    EXPECT_EQ(p.windowAttr.samplesPerGroup, out.window.samplesPerGroup);
    EXPECT_EQ(p.truthAttr.samplesPerGroup, out.truth.samplesPerGroup);
}

// ---------------------------------------------------------------------
// vprof: exporters
// ---------------------------------------------------------------------

namespace
{

/** A small hand-built profile with a three-node CCT. */
Profile
makeSyntheticProfile()
{
    Profile p;
    p.workload = "toy";
    p.isa = "arm64";
    p.period = 100;
    p.window = 2;
    p.jitSamples = 10;
    p.interpSamples = 5;
    p.runtimeSamples = 1;
    p.windowAttr.totalSamples = 10;
    p.windowAttr.checkSamples = 4;
    p.windowAttr.samplesPerGroup[static_cast<size_t>(CheckGroup::Smi)] =
        4;
    p.truthAttr.totalSamples = 10;
    p.truthAttr.checkSamples = 3;
    p.truthAttr.samplesPerGroup[static_cast<size_t>(CheckGroup::Smi)] =
        3;

    CctNode root;
    root.children = {1};
    CctNode main_n;
    main_n.parent = 0;
    main_n.kind = ProfFrameKind::Interp;
    main_n.function = 0;
    main_n.interpSamples = 5;
    main_n.children = {2};
    CctNode f;
    f.parent = 1;
    f.kind = ProfFrameKind::Jit;
    f.function = 1;
    f.codeId = 0;
    f.jitSamples = 10;
    f.runtimeSamples = 1;
    p.cct = {root, main_n, f};
    p.cctNames = {"root", "main", "f"};

    ProfileFunction fun;
    fun.name = "f";
    fun.samples = 10;
    fun.windowCheckSamples = 4;
    fun.truthCheckSamples = 3;
    p.functions = {fun};

    ProfileLine line;
    line.function = "f";
    line.line = 3;
    line.samples = 10;
    line.windowCheckSamples = 4;
    line.truthCheckSamples = 3;
    line.windowPerGroup[static_cast<size_t>(CheckGroup::Smi)] = 4;
    line.truthPerGroup[static_cast<size_t>(CheckGroup::Smi)] = 3;
    p.lines = {line};
    return p;
}

} // namespace

TEST(Profiler, FoldedExportGolden)
{
    Profile p = makeSyntheticProfile();
    EXPECT_EQ(profileToFolded(p),
              "root;main_[i] 5\n"
              "root;main_[i];f 11\n");
}

TEST(Profiler, JsonExportIsValidAndGolden)
{
    Profile p = makeSyntheticProfile();
    std::string json = profileToJson(p);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, error)) << error;
    EXPECT_EQ(doc.get("schema")->string, "vspec-profile-v1");
    EXPECT_EQ(doc.get("workload")->string, "toy");
    EXPECT_EQ(doc.at({"samples", "total"})->asU64(), 16u);
    EXPECT_EQ(doc.at({"samples", "jit"})->asU64(), 10u);
    EXPECT_EQ(doc.at({"attribution", "window", "checkSamples"})->asU64(),
              4u);
    EXPECT_EQ(doc.at({"attribution", "truth", "groups", "SMI"})->asU64(),
              3u);
    ASSERT_TRUE(doc.get("cct")->isArray());
    ASSERT_EQ(doc.get("cct")->array.size(), 3u);
    EXPECT_EQ(doc.get("cct")->array[2].get("name")->string, "f");
    EXPECT_EQ(doc.get("cct")->array[2].get("jit")->asU64(), 10u);
    ASSERT_EQ(doc.get("lines")->array.size(), 1u);
    EXPECT_EQ(doc.get("lines")->array[0].get("line")->asU64(), 3u);

    // Golden prefix: the emitted header is stable (a schema change must
    // be deliberate).
    const std::string prefix =
        "{\"schema\":\"vspec-profile-v1\",\"workload\":\"toy\","
        "\"isa\":\"arm64\",\"period\":100,";
    EXPECT_EQ(json.substr(0, prefix.size()), prefix);
}

TEST(Profiler, ProfileDiffReportsPerFunctionDeltas)
{
    Profile a = makeSyntheticProfile();
    Profile b = makeSyntheticProfile();
    b.functions[0].samples = 20;   // f doubled
    b.lines[0].samples = 20;
    ProfileFunction extra;
    extra.name = "g";
    extra.samples = 7;
    b.functions.push_back(extra);

    JsonValue ja, jb;
    std::string error;
    ASSERT_TRUE(parseJson(profileToJson(a), ja, error)) << error;
    ASSERT_TRUE(parseJson(profileToJson(b), jb, error)) << error;
    std::string report = profileDiffReport(ja, jb, error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_NE(report.find("per-function"), std::string::npos);
    EXPECT_NE(report.find("+10 samples"), std::string::npos);
    EXPECT_NE(report.find("~+1000 cycles"), std::string::npos);
    EXPECT_NE(report.find("g"), std::string::npos);
    EXPECT_NE(report.find("f:3"), std::string::npos);

    // Schema mismatch is a structured error, not a crash.
    JsonValue bogus;
    ASSERT_TRUE(parseJson("{\"schema\":\"other\"}", bogus, error));
    profileDiffReport(ja, bogus, error);
    EXPECT_FALSE(error.empty());
}
