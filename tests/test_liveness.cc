/** @file Bytecode liveness analysis tests. */

#include <gtest/gtest.h>

#include "bytecode/compiler.hh"
#include "frontend/parser.hh"
#include "ir/liveness.hh"

using namespace vspec;

namespace
{

class LivenessTest : public ::testing::Test
{
  protected:
    LivenessTest() : ctx(8u << 20), globals(ctx) {}

    const FunctionInfo &
    compile(const std::string &src)
    {
        BytecodeCompiler compiler(ctx, globals, functions);
        compiler.compileProgram(parseProgram(src));
        return functions.at(functions.idOf("f"));
    }

    /** Find the bytecode offset of the first instruction of kind op. */
    u32
    offsetOf(const FunctionInfo &fn, Bc op)
    {
        for (size_t i = 0; i < fn.bytecode.size(); i++)
            if (fn.bytecode[i].op == op)
                return static_cast<u32>(i);
        return 0xffffffffu;
    }

    VMContext ctx;
    GlobalRegistry globals;
    FunctionTable functions;
};

} // namespace

TEST_F(LivenessTest, ParamLiveUntilLastUse)
{
    const FunctionInfo &fn = compile(
        "function f(a) { var x = a + 1; return x; }");
    BytecodeLiveness live(fn);
    // r1 = a is live at entry...
    EXPECT_TRUE(live.regLiveIn(0, FunctionInfo::kFirstParamReg));
    // ...but dead by the final Return (x is returned, not a).
    u32 ret = offsetOf(fn, Bc::Return);
    EXPECT_FALSE(live.regLiveIn(ret, FunctionInfo::kFirstParamReg));
}

TEST_F(LivenessTest, UnusedParamIsDeadAtEntry)
{
    const FunctionInfo &fn = compile("function f(a, b) { return a; }");
    BytecodeLiveness live(fn);
    EXPECT_TRUE(live.regLiveIn(0, 1));   // a used
    EXPECT_FALSE(live.regLiveIn(0, 2));  // b never used
}

TEST_F(LivenessTest, LoopCarriedVariableLiveAtHeader)
{
    const FunctionInfo &fn = compile(R"JS(
function f(n) {
    var s = 0;
    for (var i = 0; i < n; i++) { s = s + i; }
    return s;
}
)JS");
    BytecodeLiveness live(fn);
    // Find the loop header (the JumpLoop target).
    u32 header = 0xffffffffu;
    for (const auto &ins : fn.bytecode)
        if (ins.op == Bc::JumpLoop)
            header = static_cast<u32>(ins.a);
    ASSERT_NE(header, 0xffffffffu);
    // s, i and n are all live-in at the header.
    int live_regs = 0;
    for (u32 r = 0; r < fn.registerCount; r++)
        if (live.regLiveIn(header, r))
            live_regs++;
    EXPECT_GE(live_regs, 3);
}

TEST_F(LivenessTest, TempDeadAcrossLoopBackEdge)
{
    // The expression temp used for `s + i` holds a stale value at the
    // loop header; liveness must call it dead there (this is what
    // prevents spurious loop phis, see the CRC32 thrash regression).
    const FunctionInfo &fn = compile(R"JS(
function f(n) {
    var s = 0;
    for (var i = 0; i < n; i++) { s = s + i * 2; }
    return s;
}
)JS");
    BytecodeLiveness live(fn);
    u32 header = 0xffffffffu;
    for (const auto &ins : fn.bytecode)
        if (ins.op == Bc::JumpLoop)
            header = static_cast<u32>(ins.a);
    ASSERT_NE(header, 0xffffffffu);
    // The highest-numbered registers are expression temps; at least
    // one must be dead at the header.
    bool some_dead_temp = false;
    for (u32 r = fn.registerCount - 3; r < fn.registerCount; r++)
        if (!live.regLiveIn(header, r))
            some_dead_temp = true;
    EXPECT_TRUE(some_dead_temp);
}

TEST_F(LivenessTest, AccumulatorLivenessAroundBranches)
{
    const FunctionInfo &fn = compile(
        "function f(a) { if (a) { return 1; } return 2; }");
    BytecodeLiveness live(fn);
    // At the JumpIfFalse itself the accumulator (condition) is live-in.
    u32 jf = offsetOf(fn, Bc::JumpIfFalse);
    ASSERT_NE(jf, 0xffffffffu);
    EXPECT_TRUE(live.accLiveIn(jf));
    // Immediately after the branch the condition value is dead (both
    // arms overwrite the accumulator before Return).
    EXPECT_FALSE(live.accLiveIn(jf + 1));
}

TEST_F(LivenessTest, CallArgumentsAreUses)
{
    const FunctionInfo &fn = compile(R"JS(
function g(x, y) { return x + y; }
function f(a, b) { return g(a, b); }
)JS");
    BytecodeLiveness live(fn);
    u32 call = offsetOf(fn, Bc::Call);
    ASSERT_NE(call, 0xffffffffu);
    // The registers holding the marshalled arguments are live at the
    // call instruction.
    const BcInstr &ins = fn.bytecode[call];
    for (int i = 0; i < callArgc(ins.c); i++)
        EXPECT_TRUE(live.regLiveIn(call, static_cast<u32>(ins.b + i)));
}
