/** @file Unit tests for maps (hidden classes) and object accessors. */

#include <gtest/gtest.h>

#include <cmath>

#include "vm/objects.hh"

using namespace vspec;

class MapsObjectsTest : public ::testing::Test
{
  protected:
    VMContext ctx{8u << 20};
};

TEST_F(MapsObjectsTest, EmptyObjectHasEmptyMap)
{
    Addr obj = ctx.newObject();
    EXPECT_EQ(ctx.mapOf(obj), ctx.maps.emptyObjectMap());
    EXPECT_EQ(ctx.typeOf(obj), InstanceType::Object);
}

TEST_F(MapsObjectsTest, PropertyAddTransitionsMap)
{
    Addr obj = ctx.newObject();
    NameId x = ctx.names.intern("x");
    MapId before = ctx.mapOf(obj);
    ctx.setProperty(obj, x, Value::smi(7));
    MapId after = ctx.mapOf(obj);
    EXPECT_NE(before, after);
    EXPECT_EQ(ctx.getProperty(obj, x).asSmi(), 7);
}

TEST_F(MapsObjectsTest, SameShapeSharesMap)
{
    // The core hidden-class property: same insertion order -> same map.
    NameId a = ctx.names.intern("a");
    NameId b = ctx.names.intern("b");
    Addr o1 = ctx.newObject();
    Addr o2 = ctx.newObject();
    ctx.setProperty(o1, a, Value::smi(1));
    ctx.setProperty(o1, b, Value::smi(2));
    ctx.setProperty(o2, a, Value::smi(3));
    ctx.setProperty(o2, b, Value::smi(4));
    EXPECT_EQ(ctx.mapOf(o1), ctx.mapOf(o2));
}

TEST_F(MapsObjectsTest, DifferentInsertionOrderDifferentMap)
{
    NameId a = ctx.names.intern("a");
    NameId b = ctx.names.intern("b");
    Addr o1 = ctx.newObject();
    Addr o2 = ctx.newObject();
    ctx.setProperty(o1, a, Value::smi(1));
    ctx.setProperty(o1, b, Value::smi(2));
    ctx.setProperty(o2, b, Value::smi(2));
    ctx.setProperty(o2, a, Value::smi(1));
    EXPECT_NE(ctx.mapOf(o1), ctx.mapOf(o2));
    EXPECT_EQ(ctx.getProperty(o2, a).asSmi(), 1);
}

TEST_F(MapsObjectsTest, PropertyOverwriteKeepsMap)
{
    NameId a = ctx.names.intern("a");
    Addr obj = ctx.newObject();
    ctx.setProperty(obj, a, Value::smi(1));
    MapId m = ctx.mapOf(obj);
    ctx.setProperty(obj, a, Value::smi(99));
    EXPECT_EQ(ctx.mapOf(obj), m);
    EXPECT_EQ(ctx.getProperty(obj, a).asSmi(), 99);
}

TEST_F(MapsObjectsTest, MissingPropertyIsUndefined)
{
    Addr obj = ctx.newObject();
    EXPECT_EQ(ctx.getProperty(obj, ctx.names.intern("nope")),
              ctx.undefinedValue);
}

TEST_F(MapsObjectsTest, MapWordRoundTripsThroughHeap)
{
    Addr obj = ctx.newObject();
    u32 word = ctx.heap.mapWordOf(obj);
    EXPECT_EQ(ctx.maps.byMapWord(word), ctx.maps.emptyObjectMap());
}

// ---- arrays -----------------------------------------------------------

TEST_F(MapsObjectsTest, SmiArrayBasics)
{
    Addr arr = ctx.newArray(ElementKind::Smi, 3);
    EXPECT_EQ(ctx.arrayLength(arr), 3u);
    EXPECT_EQ(ctx.arrayKind(arr), ElementKind::Smi);
    ctx.arraySet(arr, 0, Value::smi(10));
    ctx.arraySet(arr, 2, Value::smi(-5));
    EXPECT_EQ(ctx.arrayGet(arr, 0).asSmi(), 10);
    EXPECT_EQ(ctx.arrayGet(arr, 2).asSmi(), -5);
}

TEST_F(MapsObjectsTest, OutOfBoundsLoadIsUndefined)
{
    Addr arr = ctx.newArray(ElementKind::Smi, 2);
    EXPECT_EQ(ctx.arrayGet(arr, 5), ctx.undefinedValue);
    EXPECT_EQ(ctx.arrayGet(arr, -1), ctx.undefinedValue);
}

TEST_F(MapsObjectsTest, AppendGrowsArray)
{
    Addr arr = ctx.newArray(ElementKind::Smi, 0, 2);
    for (int i = 0; i < 100; i++)
        ctx.arraySet(arr, i, Value::smi(i));
    EXPECT_EQ(ctx.arrayLength(arr), 100u);
    for (int i = 0; i < 100; i += 7)
        EXPECT_EQ(ctx.arrayGet(arr, i).asSmi(), i);
}

TEST_F(MapsObjectsTest, SmiToDoubleTransition)
{
    // §II-B element kinds: storing a double widens Smi -> Double.
    Addr arr = ctx.newArray(ElementKind::Smi, 2);
    ctx.arraySet(arr, 0, Value::smi(42));
    MapId before = ctx.mapOf(arr);
    ctx.arraySet(arr, 1, ctx.newNumber(2.5));
    EXPECT_EQ(ctx.arrayKind(arr), ElementKind::Double);
    EXPECT_NE(ctx.mapOf(arr), before);
    EXPECT_DOUBLE_EQ(ctx.numberOf(ctx.arrayGet(arr, 0)), 42.0);
    EXPECT_DOUBLE_EQ(ctx.numberOf(ctx.arrayGet(arr, 1)), 2.5);
}

TEST_F(MapsObjectsTest, DoubleToTaggedTransition)
{
    Addr arr = ctx.newArray(ElementKind::Double, 1);
    ctx.arraySet(arr, 0, ctx.newNumber(1.5));
    Addr s = ctx.newString("hi");
    ctx.arraySet(arr, 0, Value::heap(s));
    EXPECT_EQ(ctx.arrayKind(arr), ElementKind::Tagged);
    EXPECT_TRUE(ctx.isString(ctx.arrayGet(arr, 0)));
}

TEST_F(MapsObjectsTest, KindNeverNarrows)
{
    Addr arr = ctx.newArray(ElementKind::Tagged, 1);
    ctx.arraySet(arr, 0, Value::smi(1));
    EXPECT_EQ(ctx.arrayKind(arr), ElementKind::Tagged);
}

// ---- numbers / strings --------------------------------------------------

TEST_F(MapsObjectsTest, NumberCanonicalization)
{
    EXPECT_TRUE(ctx.newNumber(5.0).isSmi());
    EXPECT_FALSE(ctx.newNumber(5.5).isSmi());
    EXPECT_FALSE(ctx.newNumber(-0.0).isSmi());  // -0 stays boxed
    EXPECT_FALSE(ctx.newNumber(2e30).isSmi());
    EXPECT_TRUE(ctx.newInt(static_cast<i64>(kSmiMax)).isSmi());
    EXPECT_FALSE(ctx.newInt(static_cast<i64>(kSmiMax) + 1).isSmi());
}

TEST_F(MapsObjectsTest, StringsInternAndCompare)
{
    Addr a = ctx.internString("hello");
    Addr b = ctx.internString("hello");
    EXPECT_EQ(a, b);  // interned: same address
    Addr c = ctx.newString("hello");
    EXPECT_NE(a, c);
    EXPECT_TRUE(ctx.stringEquals(a, c));
    EXPECT_FALSE(ctx.stringEquals(a, ctx.newString("hellp")));
    EXPECT_EQ(ctx.stringOf(c), "hello");
}

TEST_F(MapsObjectsTest, TruthyFollowsEcmaScript)
{
    EXPECT_FALSE(ctx.truthy(Value::smi(0)));
    EXPECT_TRUE(ctx.truthy(Value::smi(1)));
    EXPECT_FALSE(ctx.truthy(ctx.undefinedValue));
    EXPECT_FALSE(ctx.truthy(ctx.nullValue));
    EXPECT_FALSE(ctx.truthy(ctx.falseValue));
    EXPECT_TRUE(ctx.truthy(ctx.trueValue));
    EXPECT_FALSE(ctx.truthy(Value::heap(ctx.newString(""))));
    EXPECT_TRUE(ctx.truthy(Value::heap(ctx.newString("x"))));
    EXPECT_FALSE(ctx.truthy(ctx.newNumber(std::nan(""))));
}

TEST_F(MapsObjectsTest, CoerceToStringMatchesJs)
{
    EXPECT_EQ(ctx.coerceToString(Value::smi(42)), "42");
    EXPECT_EQ(ctx.coerceToString(ctx.newNumber(2.5)), "2.5");
    EXPECT_EQ(ctx.coerceToString(ctx.undefinedValue), "undefined");
    EXPECT_EQ(ctx.coerceToString(ctx.nullValue), "null");
    // The paper's intro example: [1,2,3] + 7 -> "1,2,37".
    Addr arr = ctx.newArray(ElementKind::Smi, 0);
    ctx.arraySet(arr, 0, Value::smi(1));
    ctx.arraySet(arr, 1, Value::smi(2));
    ctx.arraySet(arr, 2, Value::smi(3));
    EXPECT_EQ(ctx.coerceToString(Value::heap(arr)) + "7", "1,2,37");
}

TEST_F(MapsObjectsTest, StrictEqualsSemantics)
{
    EXPECT_TRUE(ctx.strictEquals(Value::smi(3), ctx.newNumber(3.0)));
    EXPECT_FALSE(ctx.strictEquals(Value::smi(3), Value::smi(4)));
    Value nan = ctx.newNumber(std::nan(""));
    EXPECT_FALSE(ctx.strictEquals(nan, nan));  // NaN != NaN
    Addr s1 = ctx.newString("ab");
    Addr s2 = ctx.newString("ab");
    EXPECT_TRUE(ctx.strictEquals(Value::heap(s1), Value::heap(s2)));
}

TEST_F(MapsObjectsTest, TypeofStrings)
{
    EXPECT_EQ(ctx.typeofString(Value::smi(1)), "number");
    EXPECT_EQ(ctx.typeofString(ctx.newNumber(1.5)), "number");
    EXPECT_EQ(ctx.typeofString(ctx.undefinedValue), "undefined");
    EXPECT_EQ(ctx.typeofString(ctx.trueValue), "boolean");
    EXPECT_EQ(ctx.typeofString(Value::heap(ctx.newString("s"))), "string");
    EXPECT_EQ(ctx.typeofString(Value::heap(ctx.newObject())), "object");
}
