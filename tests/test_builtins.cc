/** @file Builtin function semantics (through the engine). */

#include <gtest/gtest.h>

#include "runtime/engine.hh"

using namespace vspec;

namespace
{

std::string
evalExpr(const std::string &expr)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram("function bench() { return " + expr + "; }");
    return engine.vm.display(engine.call("bench"));
}

} // namespace

TEST(Builtins, MathFunctions)
{
    EXPECT_EQ(evalExpr("Math.floor(2.7)"), "2");
    EXPECT_EQ(evalExpr("Math.floor(-2.1)"), "-3");
    EXPECT_EQ(evalExpr("Math.ceil(2.1)"), "3");
    EXPECT_EQ(evalExpr("Math.round(2.5)"), "3");
    EXPECT_EQ(evalExpr("Math.abs(-7)"), "7");
    EXPECT_EQ(evalExpr("Math.sqrt(144)"), "12");
    EXPECT_EQ(evalExpr("Math.min(3, 1, 2)"), "1");
    EXPECT_EQ(evalExpr("Math.max(3, 9, 2)"), "9");
    EXPECT_EQ(evalExpr("Math.pow(2, 10)"), "1024");
    EXPECT_EQ(evalExpr("Math.floor(Math.sin(0) * 100)"), "0");
    EXPECT_EQ(evalExpr("Math.floor(Math.cos(0) * 100)"), "100");
    EXPECT_EQ(evalExpr("Math.floor(Math.log(Math.exp(2)) * 10)"), "20");
}

TEST(Builtins, StringMethods)
{
    EXPECT_EQ(evalExpr("\"hello\".length"), "5");
    EXPECT_EQ(evalExpr("\"abc\".charCodeAt(1)"), "98");
    EXPECT_EQ(evalExpr("\"abc\".charAt(2)"), "\"c\"");
    EXPECT_EQ(evalExpr("\"hello\".substring(1, 3)"), "\"el\"");
    EXPECT_EQ(evalExpr("\"hello\".indexOf(\"ll\")"), "2");
    EXPECT_EQ(evalExpr("\"hello\".indexOf(\"z\")"), "-1");
    EXPECT_EQ(evalExpr("String.fromCharCode(72, 105)"), "\"Hi\"");
    EXPECT_EQ(evalExpr("\"a,b,,c\".split(\",\").length"), "4");
    EXPECT_EQ(evalExpr("\"a,b\".split(\",\")[1]"), "\"b\"");
    EXPECT_EQ(evalExpr("\"abc\".charCodeAt(99) + \"\""), "\"NaN\"");
}

TEST(Builtins, ArrayMethods)
{
    EXPECT_EQ(evalExpr("[1, 2, 3].join(\"-\")"), "\"1-2-3\"");
    EXPECT_EQ(evalExpr("[5, 6].indexOf(6)"), "1");
    EXPECT_EQ(evalExpr("[5, 6].indexOf(7)"), "-1");
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
function bench() {
    var a = [1];
    a.push(2);
    a.push(3);
    var popped = a.pop();
    return a.length * 100 + popped;
}
)JS");
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "203");
}

TEST(Builtins, ParseIntFloat)
{
    EXPECT_EQ(evalExpr("parseInt(\"42\")"), "42");
    EXPECT_EQ(evalExpr("parseInt(\"ff\", 16)"), "255");
    EXPECT_EQ(evalExpr("parseInt(\"12abc\")"), "12");
    EXPECT_EQ(evalExpr("parseFloat(\"2.5x\")"), "2.5");
    EXPECT_EQ(evalExpr("parseInt(\"zz\") + \"\""), "\"NaN\"");
}

TEST(Builtins, RegexEntryPoints)
{
    EXPECT_EQ(evalExpr("reTest(\"a+b\", \"xxaab\")"), "true");
    EXPECT_EQ(evalExpr("reTest(\"q\", \"xxaab\")"), "false");
    EXPECT_EQ(evalExpr("reCount(\"\\\\d+\", \"a1 b22 c333\")"), "3");
    EXPECT_EQ(evalExpr("reReplace(\"\\\\d\", \"a1b2\", \"_\")"),
              "\"a_b_\"");
}

TEST(Builtins, BuiltinCostsAreCharged)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(
        "function bench() { return reCount(\"a\", "
        "\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\"); }");
    Cycles before = engine.totalCycles();
    engine.call("bench");
    EXPECT_GT(engine.totalCycles() - before, 100u);
}

TEST(Builtins, PrintFormatsLikeConsole)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
print("x", 1, 2.5, true, null, undefined);
print([1, 2]);
)JS");
    EXPECT_EQ(engine.consoleOut, "x 1 2.5 true null undefined\n1,2\n");
}
