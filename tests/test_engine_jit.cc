/** @file End-to-end engine tests: tiering and interp-vs-JIT agreement. */

#include <gtest/gtest.h>

#include "runtime/engine.hh"

using namespace vspec;

namespace
{

/** Run `bench()` N times in a JIT engine and an interp-only engine and
 *  require identical results on every iteration. */
void
differential(const std::string &src, int iterations = 8)
{
    EngineConfig jit_cfg;
    Engine jit(jit_cfg);
    jit.loadProgram(src);
    EngineConfig int_cfg;
    int_cfg.enableOptimization = false;
    Engine interp(int_cfg);
    interp.loadProgram(src);
    for (int i = 0; i < iterations; i++) {
        std::string a = jit.vm.display(jit.call("bench"));
        std::string b = interp.vm.display(interp.call("bench"));
        ASSERT_EQ(a, b) << "diverged at iteration " << i;
    }
    // The hot function must actually have been optimized.
    EXPECT_GE(jit.compilations, 1u);
}

} // namespace

TEST(EngineJit, TierUpHappensAfterWarmup)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(
        "function bench() { var s = 0; "
        "for (var i = 0; i < 100; i++) { s = s + i; } return s; }");
    engine.call("bench");
    EXPECT_EQ(engine.compilations, 0u);  // first call interprets
    engine.call("bench");
    EXPECT_GE(engine.compilations, 1u);  // second call tiers up
    FunctionId fid = engine.functions.idOf("bench");
    EXPECT_TRUE(engine.functions.at(fid).hasCode());
}

TEST(EngineJit, OptimizedCodeIsFaster)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(
        "function bench() { var s = 0; "
        "for (var i = 0; i < 1000; i++) { s = (s + i) % 8192; } return s; }");
    Cycles t0 = engine.totalCycles();
    engine.call("bench");
    Cycles first = engine.totalCycles() - t0;
    for (int i = 0; i < 3; i++)
        engine.call("bench");
    Cycles t1 = engine.totalCycles();
    engine.call("bench");
    Cycles steady = engine.totalCycles() - t1;
    EXPECT_LT(steady, first / 2);  // paper: steady-state >= 2.5x faster
}

TEST(EngineJit, DifferentialSmiLoops)
{
    differential(R"JS(
var a = [];
function setup() { for (var i = 0; i < 50; i++) { a.push(i % 13); } }
setup();
function bench() {
    var s = 0;
    for (var i = 0; i < 50; i++) { s = (s + a[i] * (i % 5 + 1)) % 100000; }
    return s;
})JS");
}

TEST(EngineJit, DifferentialFloatStencil)
{
    differential(R"JS(
var u = [];
function setup() { for (var i = 0; i < 64; i++) { u.push(i * 0.25); } }
setup();
function bench() {
    for (var i = 1; i < 63; i++) {
        u[i] = (u[i - 1] + u[i] * 2.0 + u[i + 1]) * 0.25;
    }
    return Math.floor(u[32] * 1000);
})JS");
}

TEST(EngineJit, DifferentialObjectsAndCalls)
{
    differential(R"JS(
function step(p) { p.x = (p.x + p.v) % 4096; return p.x; }
var ps = [];
function setup() {
    for (var i = 0; i < 8; i++) { ps.push({ x: i, v: i + 1 }); }
}
setup();
function bench() {
    var s = 0;
    for (var r = 0; r < 20; r++) {
        for (var i = 0; i < 8; i++) { s = (s + step(ps[i])) % 100000; }
    }
    return s;
})JS");
}

TEST(EngineJit, DifferentialStrings)
{
    differential(R"JS(
function bench() {
    var s = "";
    for (var i = 0; i < 20; i++) { s = s + "ab"; }
    var n = 0;
    for (var j = 0; j < s.length; j++) { n = n + s.charCodeAt(j); }
    return n;
})JS");
}

TEST(EngineJit, DifferentialBitOps)
{
    differential(R"JS(
function bench() {
    var h = 17;
    for (var i = 0; i < 200; i++) {
        h = ((h ^ (i & 255)) * 31) & 1048575;
        h = (h << 1) | (h >>> 19) & 1;
    }
    return h;
})JS");
}

TEST(EngineJit, DifferentialGrowingAccumulator)
{
    // Crosses the SMI boundary mid-run: overflow deopt then float path.
    differential(R"JS(
var total = 0;
function bench() {
    for (var i = 0; i < 100; i++) { total = total + 3000000; }
    return total % 9973;
})JS", 10);
}

TEST(EngineJit, ConstantGlobalChangeTriggersLazyDeopt)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram(R"JS(
var K = 10;
function bench() { var s = 0;
for (var i = 0; i < 10; i++) { s = s + K; } return s; }
function flip() { K = 20; }
)JS");
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "100");
    engine.call("bench");  // tiers up with K embedded as a constant
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "100");
    engine.call("flip");   // writes K -> invalidates dependent code
    EXPECT_GE(engine.lazyDeopts, 1u);
    EXPECT_EQ(engine.vm.display(engine.call("bench")), "200");
}

TEST(EngineJit, MathRandomIsSeededAndDeterministic)
{
    auto run_once = [] {
        Engine engine{EngineConfig{}};
        engine.loadProgram(
            "function bench() { return Math.floor(Math.random() * "
            "1000000); }");
        return engine.vm.display(engine.call("bench"));
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(EngineJit, ConsoleOutput)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram("print(\"hello\", 42);");
    EXPECT_EQ(engine.consoleOut, "hello 42\n");
}

TEST(EngineJit, UnknownFunctionIsFatal)
{
    Engine engine{EngineConfig{}};
    engine.loadProgram("function bench() { return 1; }");
    EXPECT_THROW(engine.call("nope"), std::exception);
}

TEST(EngineJit, X64FlavourProducesFewerInstructions)
{
    // CISC memory-operand forms make x64 code denser (paper §III-A).
    auto instrs_for = [](IsaFlavour isa) {
        EngineConfig cfg;
        cfg.isa = isa;
        Engine engine(cfg);
        engine.loadProgram(R"JS(
var a = [];
function setup() { for (var i = 0; i < 32; i++) { a.push(i); } }
setup();
function bench() { var s = 0;
for (var i = 0; i < 32; i++) { s = (s + a[i]) % 65536; } return s; }
)JS");
        for (int i = 0; i < 3; i++)
            engine.call("bench");
        FunctionId fid = engine.functions.idOf("bench");
        const FunctionInfo &fn = engine.functions.at(fid);
        EXPECT_TRUE(fn.hasCode());
        return engine.codeObjects[fn.codeId]->code.size();
    };
    EXPECT_LT(instrs_for(IsaFlavour::X64Like),
              instrs_for(IsaFlavour::Arm64Like));
}
