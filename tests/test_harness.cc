/** @file Experiment-harness tests (removal search, outcomes, jitter). */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace vspec;

TEST(Harness, RunOutcomeFieldsArePopulated)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 10;
    rc.size = 128;
    RunOutcome out = runWorkload(*w, rc, nullptr);
    ASSERT_TRUE(out.completed) << out.error;
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(out.iterationCycles.size(), 10u);
    EXPECT_GT(out.totalCycles, 0u);
    EXPECT_GT(out.sim.instructions, 0u);
    EXPECT_GE(out.compilations, 1u);
    EXPECT_GT(out.staticCheckFreqPer100, 0.0);
    EXPECT_GT(out.window.totalSamples, 0u);
    EXPECT_FALSE(out.checksum.empty());
}

TEST(Harness, ChecksumMismatchDetected)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 5;
    rc.size = 64;
    std::string wrong = "not-the-checksum";
    RunOutcome out = runWorkload(*w, rc, &wrong);
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.valid);
}

TEST(Harness, RemovalSpeedsUpCheckHeavyWorkload)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 12;
    rc.size = 256;
    rc.samplerEnabled = false;
    RunOutcome with = runWorkload(*w, rc, nullptr);
    RunConfig without = RunConfig::withAllChecksRemoved(rc);
    const std::string &ref = referenceChecksum(*w, 256, 12);
    RunOutcome removed = runWorkload(*w, without, &ref);
    ASSERT_TRUE(removed.valid);
    EXPECT_LT(removed.steadyStateCycles(), with.steadyStateCycles());
    EXPECT_LT(removed.sim.checkInstructions, with.sim.checkInstructions);
}

TEST(Harness, SafeRemovalSetKeepsNeededChecks)
{
    // GROWING-SUM deopts on Overflow in normal flow: removing the
    // Arithmetic group must be detected as unsafe.
    const Workload *w = findWorkload("GROWING-SUM");
    RunConfig rc;
    rc.iterations = 40;
    auto safe = findSafeRemovalSet(*w, rc, 40);
    EXPECT_FALSE(safe[static_cast<size_t>(CheckGroup::Arithmetic)]);
    // And the resulting configuration validates.
    RunConfig with_safe = rc;
    with_safe.removeChecks = safe;
    const std::string &ref = referenceChecksum(*w, w->defaultSize, 40);
    EXPECT_TRUE(runWorkload(*w, with_safe, &ref).valid);
}

TEST(Harness, SafeRemovalIsAllForPureKernels)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 20;
    rc.size = 128;
    auto safe = findSafeRemovalSet(*w, rc, 20);
    for (size_t g = 0; g < kNumGroups; g++)
        EXPECT_TRUE(safe[g]) << checkGroupName(static_cast<CheckGroup>(g));
}

TEST(Harness, LeftoverFractionBounded)
{
    const Workload *w = findWorkload("KIND-SHIFT");
    RunConfig rc;
    rc.iterations = 50;
    auto safe = findSafeRemovalSet(*w, rc, 50);
    bool all = true;
    for (bool b : safe)
        all = all && b;
    if (!all) {
        double frac = leftoverCheckFraction(*w, rc, safe);
        EXPECT_GT(frac, 0.0);
        EXPECT_LT(frac, 1.0);
    }
}

TEST(Harness, JitterPerturbsTimings)
{
    const Workload *w = findWorkload("DP");
    RunConfig a;
    a.iterations = 8;
    a.size = 128;
    RunConfig b = a;
    b.jitter = 1;
    RunOutcome ra = runWorkload(*w, a, nullptr);
    RunOutcome rb = runWorkload(*w, b, nullptr);
    EXPECT_EQ(ra.checksum, rb.checksum);       // results identical
    EXPECT_NE(ra.totalCycles, rb.totalCycles); // timing perturbed
}

TEST(Harness, DeterministicWithoutJitter)
{
    const Workload *w = findWorkload("HASH-FNV");
    RunConfig rc;
    rc.iterations = 6;
    rc.size = 32;
    RunOutcome a = runWorkload(*w, rc, nullptr);
    RunOutcome b = runWorkload(*w, rc, nullptr);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.sim.instructions, b.sim.instructions);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Harness, BranchOnlyRemovalReducesBranchesNotCorrectness)
{
    const Workload *w = findWorkload("MMUL");
    RunConfig rc;
    rc.iterations = 8;
    rc.size = 12;
    rc.samplerEnabled = false;
    RunOutcome def = runWorkload(*w, rc, nullptr);
    RunConfig nb = rc;
    nb.removeBranchesOnly = true;
    const std::string &ref = referenceChecksum(*w, 12, 8);
    RunOutcome out = runWorkload(*w, nb, &ref);
    EXPECT_TRUE(out.valid);
    EXPECT_LT(out.sim.branches, def.sim.branches);
    // §IV-B: only a minor cycle improvement.
    EXPECT_LT(out.meanCycles(), def.meanCycles() * 1.02);
}

TEST(Harness, SmiExtensionConfigPropagates)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    rc.iterations = 8;
    rc.size = 128;
    rc.smiExtension = true;
    rc.samplerEnabled = false;
    RunOutcome out = runWorkload(*w, rc, nullptr);
    ASSERT_TRUE(out.completed);
    EXPECT_GT(out.sim.fusedSmiLoads, 0u);
}
